"""Property-based gradient checks: autograd vs central finite differences.

These are the load-bearing correctness tests of the substrate — every op
used by the distillation framework is checked on hypothesis-generated
inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, functional as F, gradcheck

SMALL = hnp.arrays(
    np.float64,
    hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-2.0, 2.0, allow_nan=False),
)
POSITIVE = hnp.arrays(
    np.float64,
    hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=4),
    elements=st.floats(0.2, 3.0, allow_nan=False),
)
MATRIX = hnp.arrays(
    np.float64, (3, 5), elements=st.floats(-3.0, 3.0, allow_nan=False)
)


class TestElementwiseGrads:
    @given(SMALL)
    def test_add_mul(self, a):
        gradcheck(lambda x: x * 3.0 + x, [a])

    @given(SMALL)
    def test_square(self, a):
        gradcheck(lambda x: x * x, [a])

    @given(POSITIVE)
    def test_div(self, a):
        gradcheck(lambda x: 1.0 / x, [a])

    @given(POSITIVE)
    def test_log(self, a):
        gradcheck(lambda x: x.log(), [a])

    @given(SMALL)
    def test_exp(self, a):
        gradcheck(lambda x: x.exp(), [a])

    @given(POSITIVE)
    def test_sqrt(self, a):
        gradcheck(lambda x: x.sqrt(), [a])

    @given(POSITIVE)
    def test_pow(self, a):
        gradcheck(lambda x: x**2.5, [a])

    @given(SMALL)
    def test_tanh(self, a):
        gradcheck(lambda x: x.tanh(), [a])

    @given(SMALL)
    def test_sigmoid(self, a):
        gradcheck(lambda x: x.sigmoid(), [a])

    @given(SMALL.filter(lambda a: (np.abs(a) > 1e-2).all()))
    def test_abs_away_from_zero(self, a):
        gradcheck(lambda x: x.abs(), [a])

    @given(SMALL.filter(lambda a: (np.abs(a) > 1e-2).all()))
    def test_relu_away_from_zero(self, a):
        gradcheck(lambda x: x.relu(), [a])


class TestReductionGrads:
    @given(SMALL)
    def test_sum_all(self, a):
        gradcheck(lambda x: x.sum(), [a])

    @given(MATRIX)
    def test_sum_axis0(self, a):
        gradcheck(lambda x: x.sum(axis=0), [a])

    @given(MATRIX)
    def test_sum_axis_keepdims(self, a):
        gradcheck(lambda x: x.sum(axis=1, keepdims=True), [a])

    @given(MATRIX)
    def test_mean(self, a):
        gradcheck(lambda x: x.mean(axis=1), [a])

    @given(MATRIX)
    def test_var(self, a):
        gradcheck(lambda x: x.var(axis=0), [a])

    @given(MATRIX)
    def test_logsumexp(self, a):
        gradcheck(lambda x: x.logsumexp(axis=1), [a])

    def test_max_unique(self, rng):
        # ties break gradient smoothness; use distinct values
        a = rng.permutation(20).reshape(4, 5).astype(np.float64)
        gradcheck(lambda x: x.max(axis=1), [a])


class TestMatmulGrads:
    @given(
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-2, 2)),
        hnp.arrays(np.float64, (4, 2), elements=st.floats(-2, 2)),
    )
    def test_matmul_2d(self, a, b):
        gradcheck(lambda x, y: x @ y, [a, b])

    @given(
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-2, 2)),
        hnp.arrays(np.float64, (4,), elements=st.floats(-2, 2)),
    )
    def test_matmul_matvec(self, a, b):
        gradcheck(lambda x, y: x @ y, [a, b])

    @given(
        hnp.arrays(np.float64, (4,), elements=st.floats(-2, 2)),
        hnp.arrays(np.float64, (4,), elements=st.floats(-2, 2)),
    )
    def test_dot(self, a, b):
        gradcheck(lambda x, y: x @ y, [a, b])


class TestShapeOpGrads:
    @given(MATRIX)
    def test_reshape(self, a):
        gradcheck(lambda x: x.reshape(5, 3) * 2.0, [a])

    @given(MATRIX)
    def test_transpose(self, a):
        gradcheck(lambda x: x.T @ x, [a])

    @given(MATRIX)
    def test_slice(self, a):
        gradcheck(lambda x: x[1:, 2:], [a])

    @given(MATRIX)
    def test_concat_self(self, a):
        gradcheck(lambda x: Tensor.concatenate([x[:, :2], x[:, 2:] * 2.0], axis=1), [a])

    def test_pad2d(self, rng):
        a = rng.standard_normal((1, 2, 3, 3))
        gradcheck(lambda x: x.pad2d(1), [a])


class TestFunctionalGrads:
    @given(MATRIX)
    def test_log_softmax(self, a):
        gradcheck(lambda x: F.log_softmax(x), [a])

    @given(MATRIX)
    def test_softmax(self, a):
        gradcheck(lambda x: F.softmax(x), [a])

    @given(MATRIX)
    def test_cross_entropy(self, a):
        labels = np.array([0, 1, 2])
        gradcheck(lambda x: F.cross_entropy(x, labels), [a])

    @given(
        hnp.arrays(np.float64, (3, 5), elements=st.floats(-3, 3)),
        hnp.arrays(np.float64, (3, 5), elements=st.floats(-3, 3)),
    )
    def test_kl_from_logits_student_side(self, t, s):
        gradcheck(lambda s_: F.kl_div_from_logits(Tensor(t), s_, temperature=2.0), [s])

    @given(
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-3, 3)),
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-3, 3)),
    )
    def test_mse(self, t, s):
        gradcheck(lambda s_: F.mse_loss(s_, Tensor(t)), [s])

    def test_l1_away_from_equality(self, rng):
        t = rng.standard_normal((3, 4))
        s = t + np.sign(rng.standard_normal((3, 4))) * (0.1 + rng.random((3, 4)))
        gradcheck(lambda s_: F.l1_loss(s_, Tensor(t)), [s])
