"""Forward-value tests of the tensor engine against numpy references."""

import numpy as np
import pytest

from repro.tensor import Tensor


class TestArithmetic:
    def test_add(self, rng):
        a, b = rng.random((3, 4)), rng.random((3, 4))
        assert np.allclose((Tensor(a) + Tensor(b)).numpy(), a + b)

    def test_add_scalar(self, rng):
        a = rng.random((3, 4))
        assert np.allclose((Tensor(a) + 2.5).numpy(), a + 2.5)

    def test_radd(self, rng):
        a = rng.random(5)
        assert np.allclose((2.0 + Tensor(a)).numpy(), a + 2.0)

    def test_sub(self, rng):
        a, b = rng.random((2, 3)), rng.random(3)
        assert np.allclose((Tensor(a) - Tensor(b)).numpy(), a - b)

    def test_rsub(self, rng):
        a = rng.random(4)
        assert np.allclose((1.0 - Tensor(a)).numpy(), 1.0 - a)

    def test_mul_broadcast(self, rng):
        a, b = rng.random((4, 1, 3)), rng.random((2, 3))
        assert np.allclose((Tensor(a) * Tensor(b)).numpy(), a * b)

    def test_div(self, rng):
        a, b = rng.random((3, 3)) + 1, rng.random((3, 3)) + 1
        assert np.allclose((Tensor(a) / Tensor(b)).numpy(), a / b)

    def test_rdiv(self, rng):
        a = rng.random(4) + 0.5
        assert np.allclose((2.0 / Tensor(a)).numpy(), 2.0 / a)

    def test_neg(self, rng):
        a = rng.random((2, 2))
        assert np.allclose((-Tensor(a)).numpy(), -a)

    def test_pow(self, rng):
        a = rng.random((3, 2)) + 0.1
        assert np.allclose((Tensor(a) ** 3).numpy(), a**3)

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(3)) ** np.ones(3)


class TestElementwiseFunctions:
    def test_exp_log_roundtrip(self, rng):
        a = rng.random((3, 3)) + 0.5
        assert np.allclose(Tensor(a).log().exp().numpy(), a, atol=1e-6)

    def test_sqrt(self, rng):
        a = rng.random(6) + 0.1
        assert np.allclose(Tensor(a).sqrt().numpy(), np.sqrt(a))

    def test_abs(self, rng):
        a = rng.standard_normal((4, 4))
        assert np.allclose(Tensor(a).abs().numpy(), np.abs(a))

    def test_tanh(self, rng):
        a = rng.standard_normal(5)
        assert np.allclose(Tensor(a).tanh().numpy(), np.tanh(a))

    def test_sigmoid(self, rng):
        a = rng.standard_normal(5)
        assert np.allclose(Tensor(a).sigmoid().numpy(), 1 / (1 + np.exp(-a)))

    def test_relu(self, rng):
        a = rng.standard_normal((3, 3))
        assert np.allclose(Tensor(a).relu().numpy(), np.maximum(a, 0))

    def test_clip(self, rng):
        a = rng.standard_normal(10)
        assert np.allclose(Tensor(a).clip(-0.5, 0.5).numpy(), np.clip(a, -0.5, 0.5))


class TestLinearAlgebra:
    def test_matmul_2d(self, rng):
        a, b = rng.random((3, 4)), rng.random((4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_matmul_vector(self, rng):
        a, b = rng.random((3, 4)), rng.random(4)
        assert np.allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_dot(self, rng):
        a, b = rng.random(4), rng.random(4)
        assert np.allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_transpose_default(self, rng):
        a = rng.random((2, 3, 4))
        assert (Tensor(a).transpose().numpy() == a.transpose()).all()

    def test_transpose_axes(self, rng):
        a = rng.random((2, 3, 4))
        assert (Tensor(a).transpose(1, 0, 2).numpy() == a.transpose(1, 0, 2)).all()

    def test_T_property(self, rng):
        a = rng.random((2, 5))
        assert (Tensor(a).T.numpy() == a.T).all()


class TestReductions:
    def test_sum_all(self, rng):
        a = rng.random((3, 4))
        assert np.isclose(Tensor(a).sum().item(), a.sum())

    def test_sum_axis(self, rng):
        a = rng.random((3, 4, 5))
        assert np.allclose(Tensor(a).sum(axis=1).numpy(), a.sum(axis=1))

    def test_sum_axis_tuple_keepdims(self, rng):
        a = rng.random((2, 3, 4))
        got = Tensor(a).sum(axis=(0, 2), keepdims=True).numpy()
        assert np.allclose(got, a.sum(axis=(0, 2), keepdims=True))

    def test_mean(self, rng):
        a = rng.random((4, 6))
        assert np.allclose(Tensor(a).mean(axis=0).numpy(), a.mean(axis=0))

    def test_var_biased(self, rng):
        a = rng.random((8, 3))
        assert np.allclose(Tensor(a).var(axis=0).numpy(), a.var(axis=0), atol=1e-6)

    def test_max(self, rng):
        a = rng.random((3, 7))
        assert np.allclose(Tensor(a).max(axis=1).numpy(), a.max(axis=1))

    def test_logsumexp_matches_scipy(self, rng):
        from scipy.special import logsumexp

        a = rng.standard_normal((4, 9)) * 10
        assert np.allclose(Tensor(a).logsumexp(axis=1).numpy(), logsumexp(a, axis=1), atol=1e-5)

    def test_logsumexp_stable_for_large_logits(self):
        a = np.array([[1000.0, 1000.0]])
        out = Tensor(a).logsumexp(axis=1).numpy()
        assert np.isfinite(out).all()
        assert np.allclose(out, 1000.0 + np.log(2.0))


class TestShapes:
    def test_reshape(self, rng):
        a = rng.random((2, 6))
        assert Tensor(a).reshape(3, 4).shape == (3, 4)

    def test_reshape_infer(self, rng):
        a = rng.random((2, 6))
        assert Tensor(a).reshape(4, -1).shape == (4, 3)

    def test_getitem_row(self, rng):
        a = rng.random((5, 3))
        assert np.allclose(Tensor(a)[2].numpy(), a[2])

    def test_getitem_fancy(self, rng):
        a = rng.random((5, 6))
        idx = np.array([0, 2, 4])
        assert np.allclose(Tensor(a)[:, idx].numpy(), a[:, idx])

    def test_concatenate(self, rng):
        a, b = rng.random((2, 3)), rng.random((2, 5))
        out = Tensor.concatenate([Tensor(a), Tensor(b)], axis=1)
        assert np.allclose(out.numpy(), np.concatenate([a, b], axis=1))

    def test_stack(self, rng):
        parts = [rng.random((2, 2)) for _ in range(3)]
        out = Tensor.stack([Tensor(p) for p in parts], axis=0)
        assert np.allclose(out.numpy(), np.stack(parts))

    def test_pad2d(self, rng):
        a = rng.random((1, 2, 3, 3))
        out = Tensor(a).pad2d(2)
        assert out.shape == (1, 2, 7, 7)
        assert np.allclose(out.numpy()[:, :, 2:-2, 2:-2], a)
        assert out.numpy()[:, :, 0, :].sum() == 0

    def test_pad2d_zero_is_identity(self, rng):
        a = rng.random((1, 1, 2, 2))
        assert Tensor(a).pad2d(0).shape == (1, 1, 2, 2)


class TestDtypeAndConstructors:
    def test_float64_kept(self):
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_float32_default(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_int_labels_kept(self):
        assert Tensor(np.array([1, 2, 3])).dtype.kind == "i"

    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).numpy().sum() == 0
        assert Tensor.ones(2, 3).numpy().sum() == 6

    def test_randn_seeded(self):
        r1 = Tensor.randn(4, rng=np.random.default_rng(0)).numpy()
        r2 = Tensor.randn(4, rng=np.random.default_rng(0)).numpy()
        assert np.allclose(r1, r2)

    def test_item_scalar_only(self, rng):
        with pytest.raises(Exception):
            Tensor(rng.random((2, 2))).item()

    def test_len(self, rng):
        assert len(Tensor(rng.random((7, 2)))) == 7

    def test_detach_cuts_graph(self, rng):
        t = Tensor(rng.random(3), requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_argmax(self, rng):
        a = rng.random((4, 5))
        assert (Tensor(a).argmax(axis=1) == a.argmax(axis=1)).all()
