"""Sanity of the full training stack: can a conv net overfit a tiny batch?

The classic 'overfit one batch' smoke test exercises every layer's forward
and backward together (conv, BN train/eval statistics, residual adds,
pooling, linear, softmax CE, SGD momentum) — failures anywhere in the
stack show up here even if unit tests pass in isolation.
"""

import numpy as np
import pytest

from repro.distill import TrainConfig, Trainer, cross_entropy
from repro.models import WideResNet
from repro.tensor import Tensor, no_grad


class TestOverfitOneBatch:
    def test_wrn_overfits_small_batch(self, rng):
        x = rng.standard_normal((16, 3, 8, 8)).astype(np.float32)
        y = np.arange(16) % 4
        model = WideResNet(10, 1, 1, num_classes=4, rng=np.random.default_rng(0))

        def loss_fn(m, batch, idx):
            return cross_entropy(m(Tensor(batch)), y[idx])

        trainer = Trainer(model, loss_fn, TrainConfig(epochs=40, batch_size=16, lr=0.05, seed=0))
        history = trainer.fit(x)
        assert history.points[-1].loss < 0.1

        model.eval()
        with no_grad():
            preds = model(Tensor(x)).argmax(axis=1)
        assert (preds == y).mean() >= 0.9

    def test_loss_decreases_monotonically_on_average(self, rng):
        x = rng.standard_normal((32, 3, 8, 8)).astype(np.float32)
        y = np.arange(32) % 4
        model = WideResNet(10, 1, 0.5, num_classes=4, rng=np.random.default_rng(1))

        def loss_fn(m, batch, idx):
            return cross_entropy(m(Tensor(batch)), y[idx])

        history = Trainer(
            model, loss_fn, TrainConfig(epochs=20, batch_size=32, lr=0.05, seed=0)
        ).fit(x)
        losses = [p.loss for p in history.points]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])


class TestBatchNormConsistency:
    def test_eval_close_to_train_after_convergence(self, rng):
        """After enough batches the running stats track the data; train and
        eval outputs of the whole WRN should agree closely."""
        model = WideResNet(10, 1, 1, num_classes=3, rng=np.random.default_rng(2))
        x = rng.standard_normal((64, 3, 8, 8)).astype(np.float32)
        model.train()
        with no_grad():
            for _ in range(60):
                model(Tensor(x))
            train_out = model(Tensor(x)).numpy()
            model.eval()
            eval_out = model(Tensor(x)).numpy()
        # ranking agreement is what matters for predictions
        agree = (train_out.argmax(axis=1) == eval_out.argmax(axis=1)).mean()
        assert agree > 0.9

    def test_gradients_flow_to_every_parameter(self, rng):
        model = WideResNet(10, 1, 0.25, num_classes=3, rng=np.random.default_rng(3))
        x = Tensor(rng.standard_normal((8, 3, 8, 8)).astype(np.float32))
        loss = cross_entropy(model(x), np.arange(8) % 3)
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no gradient reached: {missing}"
