"""Magnitude pruning and sparse storage accounting."""

import numpy as np
import pytest

from repro import nn
from repro.compress import magnitude_prune, sparse_nbytes, sparsity


@pytest.fixture
def model(rng):
    m = nn.Sequential(nn.Linear(16, 16, rng=np.random.default_rng(0)), nn.ReLU(),
                      nn.Linear(16, 4, rng=np.random.default_rng(1)))
    return m


class TestMagnitudePrune:
    def test_achieves_requested_sparsity(self, model):
        magnitude_prune(model, 0.5)
        weights = np.concatenate(
            [p.data.reshape(-1) for n, p in model.named_parameters() if n.endswith("weight")]
        )
        assert abs(sparsity(weights) - 0.5) < 0.05

    def test_keeps_largest_weights(self, model):
        biggest = float(np.abs(model[0].weight.data).max())
        magnitude_prune(model, 0.9)
        assert float(np.abs(model[0].weight.data).max()) == pytest.approx(biggest)

    def test_biases_untouched(self, model):
        before = model[0].bias.data.copy()
        magnitude_prune(model, 0.9)
        assert np.allclose(model[0].bias.data, before)

    def test_zero_fraction_noop(self, model):
        before = model[0].weight.data.copy()
        magnitude_prune(model, 0.0)
        assert np.allclose(model[0].weight.data, before)

    def test_invalid_fraction(self, model):
        with pytest.raises(ValueError):
            magnitude_prune(model, 1.0)
        with pytest.raises(ValueError):
            magnitude_prune(model, -0.1)

    def test_report_per_parameter(self, model):
        report = magnitude_prune(model, 0.5)
        assert "0.weight" in report and "2.weight" in report
        assert all(0.0 <= v <= 1.0 for v in report.values())

    def test_conv_weights_pruned(self, rng):
        conv = nn.Conv2d(4, 8, 3, rng=np.random.default_rng(2))
        magnitude_prune(conv, 0.7)
        assert sparsity(conv.weight.data) > 0.6


class TestSparsity:
    def test_sparsity_values(self):
        assert sparsity(np.array([0.0, 1.0, 0.0, 2.0])) == 0.5
        assert sparsity(np.zeros(4)) == 1.0
        assert sparsity(np.ones(4)) == 0.0


class TestSparseNbytes:
    def test_dense_when_not_sparse(self, rng):
        state = {"w": rng.standard_normal((10, 10)).astype(np.float32)}
        assert sparse_nbytes(state) == state["w"].nbytes

    def test_sparse_when_mostly_zero(self):
        w = np.zeros((100, 100), dtype=np.float32)
        w[0, :10] = 1.0
        state = {"w": w}
        assert sparse_nbytes(state) == 10 * (4 + 4)

    def test_pruned_model_smaller(self, model):
        dense = sparse_nbytes({k: v for k, v in model.state_dict().items()})
        magnitude_prune(model, 0.9)
        pruned = sparse_nbytes({k: v for k, v in model.state_dict().items()})
        assert pruned < dense
