"""Post-training quantization: roundtrip error, size accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compress import (
    dequantize_state,
    dequantize_tensor,
    quantization_error,
    quantize_state,
    quantize_tensor,
    quantized_nbytes,
)

ARRAYS = hnp.arrays(
    np.float32,
    hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
    elements=st.floats(-10, 10, allow_nan=False, width=32),
)


class TestTensorRoundtrip:
    @given(ARRAYS)
    def test_error_bounded_by_half_step(self, array):
        qt = quantize_tensor(array)
        rebuilt = dequantize_tensor(qt)
        span = float(array.max() - array.min())
        tolerance = span / 255.0 / 2.0 + 1e-6
        assert np.abs(rebuilt - array).max() <= tolerance * 1.01

    def test_constant_tensor_exact(self):
        array = np.full((4, 4), 3.25, dtype=np.float32)
        assert np.allclose(dequantize_tensor(quantize_tensor(array)), array)

    def test_shape_preserved(self, rng):
        array = rng.standard_normal((2, 3, 4)).astype(np.float32)
        assert dequantize_tensor(quantize_tensor(array)).shape == (2, 3, 4)

    def test_values_are_uint8(self, rng):
        qt = quantize_tensor(rng.standard_normal(100).astype(np.float32))
        assert qt.values.dtype == np.uint8

    def test_extremes_preserved(self):
        array = np.array([-5.0, 0.0, 5.0], dtype=np.float32)
        rebuilt = dequantize_tensor(quantize_tensor(array))
        assert rebuilt[0] == pytest.approx(-5.0, abs=0.05)
        assert rebuilt[2] == pytest.approx(5.0, abs=0.05)


class TestStateDicts:
    def test_state_roundtrip_keys(self, rng):
        state = {"w": rng.standard_normal((8, 8)).astype(np.float32),
                 "b": rng.standard_normal(8).astype(np.float32)}
        rebuilt = dequantize_state(quantize_state(state))
        assert set(rebuilt) == {"w", "b"}
        assert np.abs(rebuilt["w"] - state["w"]).max() < 0.05

    def test_quantized_roughly_4x_smaller(self, rng):
        state = {"w": rng.standard_normal((64, 64)).astype(np.float32)}
        raw = state["w"].nbytes
        packed = quantized_nbytes(quantize_state(state))
        assert packed < raw / 3.5

    def test_quantization_error_small_relative_to_scale(self, rng):
        state = {"w": rng.standard_normal((32, 32)).astype(np.float32)}
        err = quantization_error(state)
        assert 0 < err < 0.05  # span ~8 sigma -> step ~0.03

    def test_quantized_model_still_accurate(self, rng):
        """End-to-end: quantize a trained linear classifier's weights and
        check predictions survive."""
        from repro import nn
        from repro.distill import batched_forward

        centers = rng.standard_normal((4, 8)) * 3
        labels = np.repeat(np.arange(4), 25)
        x = (centers[labels] + 0.3 * rng.standard_normal((100, 8))).astype(np.float32)
        model = nn.Linear(8, 4)
        model.weight.data = centers.astype(np.float32)
        model.bias.data = (-0.5 * (centers**2).sum(axis=1)).astype(np.float32)
        baseline = (batched_forward(model, x).argmax(1) == labels).mean()
        model.load_state_dict(dequantize_state(quantize_state(model.state_dict())))
        quantized = (batched_forward(model, x).argmax(1) == labels).mean()
        assert quantized >= baseline - 0.02
