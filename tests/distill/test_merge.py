"""SD / UHC merging baselines."""

import numpy as np
import pytest

from repro import nn
from repro.distill import (
    TrainConfig,
    batched_forward,
    merge_sd,
    merge_uhc,
    teacher_logit_blocks,
)


@pytest.fixture
def merge_problem(rng):
    """Two 2-class teachers over disjoint class pairs + merge data."""
    dim, per = 6, 40
    centers = rng.standard_normal((4, dim)) * 3
    labels = np.repeat(np.arange(4), per)
    x = (centers[labels] + 0.3 * rng.standard_normal((len(labels), dim))).astype(np.float32)

    teachers = []
    for pair in ((0, 1), (2, 3)):
        t = nn.Linear(dim, 2)
        t.weight.data = centers[list(pair)].astype(np.float32)
        t.bias.data = (-0.5 * (centers[list(pair)] ** 2).sum(axis=1)).astype(np.float32)
        t.eval()
        teachers.append(t)
    return x, labels, teachers


def accuracy(model, x, labels):
    return float((batched_forward(model, x).argmax(axis=1) == labels).mean())


def student_factory(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(6, 32, rng=rng), nn.ReLU(), nn.Linear(32, 4, rng=rng))


class TestTeacherBlocks:
    def test_block_shapes(self, merge_problem):
        x, _, teachers = merge_problem
        blocks = teacher_logit_blocks(teachers, x)
        assert len(blocks) == 2
        assert all(b.shape == (len(x), 2) for b in blocks)


class TestSD:
    def test_merges_consistent_teachers(self, merge_problem):
        x, labels, teachers = merge_problem
        student = student_factory(1)
        merge_sd(teachers, student, x,
                 TrainConfig(epochs=30, batch_size=32, lr=0.1, seed=0), temperature=3.0)
        assert accuracy(student, x, labels) > 0.85

    def test_scale_mismatch_hurts_sd(self, merge_problem):
        """The logit scale problem: scaling ONE teacher's logits corrupts the
        concatenated target and drags SD's accuracy down (paper §4.2)."""
        x, labels, teachers = merge_problem
        blocks = teacher_logit_blocks(teachers, x)
        consistent = student_factory(2)
        merge_sd(list(blocks), consistent, x,
                 TrainConfig(epochs=25, batch_size=32, lr=0.1, seed=0), temperature=3.0)
        skewed_blocks = [blocks[0] * 5.0, blocks[1] * 0.2]
        skewed = student_factory(2)
        merge_sd(skewed_blocks, skewed, x,
                 TrainConfig(epochs=25, batch_size=32, lr=0.1, seed=0), temperature=3.0)
        assert accuracy(skewed, x, labels) < accuracy(consistent, x, labels) - 0.1


class TestUHC:
    def test_merges_consistent_teachers(self, merge_problem):
        x, labels, teachers = merge_problem
        student = student_factory(3)
        merge_uhc(teachers, student, x,
                  TrainConfig(epochs=30, batch_size=32, lr=0.1, seed=0), temperature=3.0)
        assert accuracy(student, x, labels) > 0.85

    def test_accepts_precomputed_blocks(self, merge_problem):
        x, labels, teachers = merge_problem
        blocks = teacher_logit_blocks(teachers, x)
        student = student_factory(4)
        merge_uhc(blocks, student, x,
                  TrainConfig(epochs=20, batch_size=32, lr=0.1, seed=0))
        assert accuracy(student, x, labels) > 0.8

    def test_uhc_depends_on_teacher_scale(self, merge_problem):
        """UHC's block-mass term reads the teachers' logit scales: shifting
        one teacher's logits up re-weights its whole class block, corrupting
        the unified posterior.  This is the mechanism behind the paper's
        UHC+Scratch collapse (teachers with arbitrary scales)."""
        x, labels, teachers = merge_problem
        blocks = teacher_logit_blocks(teachers, x)
        shifted = [blocks[0] + 50.0, blocks[1]]
        s1, s2 = student_factory(5), student_factory(5)
        cfg = TrainConfig(epochs=20, batch_size=32, lr=0.1, seed=0)
        merge_uhc(blocks, s1, x, cfg, temperature=3.0)
        merge_uhc(shifted, s2, x, cfg, temperature=3.0)
        assert accuracy(s2, x, labels) < accuracy(s1, x, labels) - 0.1

    def test_mass_weight_zero_leaves_blocks_uncoupled(self, merge_problem):
        """Without the block-mass term the objective cannot identify the
        cross-block calibration for disjoint teachers (ablation of the
        probability-combination step)."""
        x, labels, teachers = merge_problem
        s_with, s_without = student_factory(6), student_factory(6)
        cfg = TrainConfig(epochs=25, batch_size=32, lr=0.1, seed=0)
        merge_uhc(teachers, s_with, x, cfg, temperature=3.0, mass_weight=1.0)
        merge_uhc(teachers, s_without, x, cfg, temperature=3.0, mass_weight=0.0)
        assert accuracy(s_with, x, labels) > accuracy(s_without, x, labels)
