"""DMC merging and ensemble combiners (paper related-work claims)."""

import numpy as np
import pytest

from repro import nn
from repro.distill import (
    DisjointEnsemble,
    TrainConfig,
    average_probabilities,
    batched_forward,
    majority_vote,
    merge_dmc,
)


@pytest.fixture
def merge_problem(rng):
    dim, per = 6, 40
    centers = rng.standard_normal((4, dim)) * 3
    labels = np.repeat(np.arange(4), per)
    x = (centers[labels] + 0.3 * rng.standard_normal((len(labels), dim))).astype(np.float32)
    teachers = []
    for pair in ((0, 1), (2, 3)):
        t = nn.Linear(dim, 2)
        t.weight.data = centers[list(pair)].astype(np.float32)
        t.bias.data = (-0.5 * (centers[list(pair)] ** 2).sum(axis=1)).astype(np.float32)
        t.eval()
        teachers.append(t)
    return x, labels, teachers


def accuracy(model, x, labels):
    return float((batched_forward(model, x).argmax(axis=1) == labels).mean())


def student_factory(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(6, 32, rng=rng), nn.ReLU(), nn.Linear(32, 4, rng=rng))


class TestDMC:
    def test_merges_disjoint_teachers(self, merge_problem):
        x, labels, teachers = merge_problem
        student = student_factory(1)
        merge_dmc(teachers, student, x, TrainConfig(epochs=40, batch_size=32, lr=0.1, seed=0))
        # DMC's standardisation discards cross-block scale, so — exactly as
        # the PoE paper argues ("DMC ... would suffer from the same issue as
        # UHC when multiple models have to be merged") — it recovers the
        # within-block structure but not the full union ordering: above
        # chance overall, near-perfect within each teacher's block.
        assert accuracy(student, x, labels) > 0.3  # chance is 0.25
        logits = batched_forward(student, x)
        for block, sl in ((labels < 2, slice(0, 2)), (labels >= 2, slice(2, 4))):
            local = labels[block] % 2
            in_block = (logits[block][:, sl].argmax(1) == local).mean()
            assert in_block > 0.9

    def test_width_mismatch_raises(self, merge_problem):
        x, _, teachers = merge_problem
        student = nn.Linear(6, 3)  # teachers cover 4 classes
        with pytest.raises(ValueError):
            merge_dmc(teachers, student, x, TrainConfig(epochs=1, batch_size=32))

    def test_accepts_precomputed_blocks(self, merge_problem):
        x, labels, teachers = merge_problem
        blocks = [batched_forward(t, x) for t in teachers]
        student = student_factory(2)
        history = merge_dmc(blocks, student, x, TrainConfig(epochs=10, batch_size=32, lr=0.1))
        assert len(history.points) == 10

    def test_scale_invariance_of_dmc(self, merge_problem):
        """DMC standardises per teacher, so rescaling one teacher's logits
        must not change the target (its answer to the scale problem)."""
        x, labels, teachers = merge_problem
        blocks = [batched_forward(t, x) for t in teachers]
        s1, s2 = student_factory(3), student_factory(3)
        cfg = TrainConfig(epochs=15, batch_size=32, lr=0.1, seed=0)
        merge_dmc(blocks, s1, x, cfg)
        merge_dmc([blocks[0] * 7.0, blocks[1]], s2, x, cfg)
        assert accuracy(s1, x, labels) == pytest.approx(accuracy(s2, x, labels), abs=0.05)


class TestHomogeneousEnsembles:
    def test_average_probabilities_improves_weak_members(self, rng):
        centers = rng.standard_normal((3, 6)) * 2.5
        labels = np.repeat(np.arange(3), 30)
        x = (centers[labels] + 0.8 * rng.standard_normal((90, 6))).astype(np.float32)
        members = []
        for seed in range(5):
            noisy = nn.Linear(6, 3)
            noisy.weight.data = (centers + rng.standard_normal((3, 6))).astype(np.float32)
            noisy.bias.data = np.zeros(3, dtype=np.float32)
            members.append(noisy)
        member_accs = [accuracy(m, x, labels) for m in members]
        ens_acc = (average_probabilities(members, x).argmax(1) == labels).mean()
        assert ens_acc >= np.mean(member_accs) - 0.02

    def test_average_requires_common_space(self, rng):
        a, b = nn.Linear(4, 3), nn.Linear(4, 5)
        with pytest.raises(ValueError):
            average_probabilities([a, b], rng.standard_normal((4, 4)).astype(np.float32))

    def test_majority_vote_shape(self, rng):
        members = [nn.Linear(4, 3) for _ in range(3)]
        votes = majority_vote(members, rng.standard_normal((10, 4)).astype(np.float32))
        assert votes.shape == (10,)
        assert set(votes).issubset({0, 1, 2})


class TestDisjointEnsembleCounterExample:
    def test_overlapping_members_rejected(self, merge_problem):
        _, _, teachers = merge_problem
        with pytest.raises(ValueError):
            DisjointEnsemble([(teachers[0], [0, 1]), (teachers[1], [1, 2])], 4)

    def test_disjoint_padding_fails_under_confidence_skew(self, merge_problem):
        """The paper's claim: ensembles cannot merge disjoint specialists.

        If one member is systematically more self-confident (e.g. trained
        with sharper logits), the padded-average ensemble funnels *all*
        predictions into that member's classes — accuracy collapses on the
        other member's half of the data."""
        x, labels, teachers = merge_problem
        sharp = nn.Linear(6, 2)
        sharp.weight.data = teachers[0].weight.data * 10  # overconfident member
        sharp.bias.data = teachers[0].bias.data * 10
        ensemble = DisjointEnsemble([(sharp, [0, 1]), (teachers[1], [2, 3])], 4)
        preds = ensemble.predict(x)
        second_half = labels >= 2
        acc_second = (preds[second_half] == labels[second_half]).mean()
        assert acc_second < 0.6  # dragged down by the louder member

    def test_probabilities_normalised(self, merge_problem):
        x, _, teachers = merge_problem
        ensemble = DisjointEnsemble([(teachers[0], [0, 1]), (teachers[1], [2, 3])], 4)
        probs = ensemble.predict_proba(x[:10])
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-4)
