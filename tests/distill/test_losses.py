"""Distillation losses: sub-logits, L_soft, L_scale, L_CKD composition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distill import (
    ckd_loss,
    kd_loss,
    scale_subtask_loss,
    soft_subtask_loss,
    sub_logits,
)
from repro.tensor import Tensor

LOGITS = hnp.arrays(np.float64, (4, 8), elements=st.floats(-5, 5))


class TestSubLogits:
    def test_selects_columns(self, rng):
        logits = Tensor(rng.standard_normal((3, 10)))
        sub = sub_logits(logits, [2, 5, 7])
        assert sub.shape == (3, 3)
        assert np.allclose(sub.numpy(), logits.numpy()[:, [2, 5, 7]])

    def test_order_preserved(self, rng):
        logits = Tensor(rng.standard_normal((2, 6)))
        sub = sub_logits(logits, [5, 0])
        assert np.allclose(sub.numpy()[:, 0], logits.numpy()[:, 5])

    def test_gradient_scatters_back(self, rng):
        logits = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        sub_logits(logits, [1, 3]).sum().backward()
        grad = logits.grad
        assert np.allclose(grad[:, [1, 3]], 1.0)
        assert np.allclose(grad[:, [0, 2, 4, 5]], 0.0)


class TestSoftSubtaskLoss:
    def test_zero_when_student_matches_teacher_subtask(self, rng):
        t = rng.standard_normal((5, 8))
        classes = [1, 4, 6]
        s = Tensor(t[:, classes])
        loss = soft_subtask_loss(Tensor(t), s, classes, temperature=3.0)
        assert abs(loss.item()) < 1e-4

    def test_shape_mismatch_raises(self, rng):
        t = Tensor(rng.standard_normal((3, 8)))
        s = Tensor(rng.standard_normal((3, 4)))
        with pytest.raises(ValueError):
            soft_subtask_loss(t, s, [0, 1], temperature=2.0)

    def test_none_classes_is_standard_kd(self, rng):
        t, s = rng.standard_normal((3, 5)), rng.standard_normal((3, 5))
        a = soft_subtask_loss(Tensor(t), Tensor(s), None, temperature=4.0).item()
        b = kd_loss(Tensor(t), Tensor(s), temperature=4.0).item()
        assert np.isclose(a, b)

    @given(LOGITS, LOGITS)
    def test_nonnegative(self, t, s):
        classes = [0, 3, 5]
        loss = soft_subtask_loss(Tensor(t), Tensor(s[:, :3]), classes, temperature=2.0)
        assert loss.item() > -1e-5

    def test_invariant_to_shift_of_student(self, rng):
        """KL on softmax sees only logit differences — the very reason the
        scale information is lost and L_scale is needed (paper §4.2)."""
        t = rng.standard_normal((4, 6))
        s = rng.standard_normal((4, 3))
        classes = [0, 2, 4]
        l1 = soft_subtask_loss(Tensor(t), Tensor(s), classes, temperature=2.0).item()
        l2 = soft_subtask_loss(Tensor(t), Tensor(s + 100.0), classes, temperature=2.0).item()
        assert np.isclose(l1, l2, atol=1e-3)


class TestScaleSubtaskLoss:
    def test_l1_zero_at_match(self, rng):
        t = rng.standard_normal((4, 6))
        classes = [1, 2]
        s = Tensor(t[:, classes])
        assert scale_subtask_loss(Tensor(t), s, classes).item() < 1e-7

    def test_sensitive_to_shift(self, rng):
        """Unlike L_soft, L_scale *does* see global logit shifts."""
        t = rng.standard_normal((4, 6))
        classes = [1, 2]
        s = Tensor(t[:, classes] + 10.0)
        assert scale_subtask_loss(Tensor(t), s, classes).item() == pytest.approx(10.0, rel=1e-4)

    def test_l2_variant(self, rng):
        t = rng.standard_normal((3, 4))
        s = Tensor(t + 2.0)
        loss = scale_subtask_loss(Tensor(t), s, None, norm="l2")
        assert loss.item() == pytest.approx(4.0, rel=1e-4)

    def test_unknown_norm(self, rng):
        t = Tensor(rng.standard_normal((2, 2)))
        with pytest.raises(ValueError):
            scale_subtask_loss(t, t, None, norm="linf")


class TestCKDLoss:
    def test_combines_both_terms(self, rng):
        t = rng.standard_normal((4, 8))
        classes = [0, 1, 2]
        s = Tensor(rng.standard_normal((4, 3)))
        both = ckd_loss(Tensor(t), s, classes, temperature=2.0, alpha=0.3).item()
        soft_only = ckd_loss(Tensor(t), s, classes, temperature=2.0, alpha=0.0).item()
        scale_only = ckd_loss(
            Tensor(t), s, classes, temperature=2.0, alpha=0.3, soft_weight=0.0
        ).item()
        assert both == pytest.approx(soft_only + scale_only, rel=1e-4)

    def test_alpha_weighting(self, rng):
        t = rng.standard_normal((4, 6))
        s = Tensor(rng.standard_normal((4, 2)))
        l1 = ckd_loss(Tensor(t), s, [0, 1], alpha=1.0, soft_weight=0.0).item()
        l2 = ckd_loss(Tensor(t), s, [0, 1], alpha=2.0, soft_weight=0.0).item()
        assert l2 == pytest.approx(2 * l1, rel=1e-4)

    def test_all_zero_weights_rejected(self, rng):
        t = Tensor(rng.standard_normal((2, 4)))
        s = Tensor(rng.standard_normal((2, 2)))
        with pytest.raises(ValueError):
            ckd_loss(t, s, [0, 1], alpha=0.0, soft_weight=0.0)

    def test_gradient_flows_to_student_only(self, rng):
        t = Tensor(rng.standard_normal((3, 6)), requires_grad=True)
        s = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        ckd_loss(t, s, [1, 4], temperature=3.0, alpha=0.3).backward()
        assert t.grad is None
        assert s.grad is not None
