"""KD / CKD / Transfer / Scratch distillation pipelines on a micro problem."""

import numpy as np
import pytest

from repro import nn
from repro.distill import (
    CKDSettings,
    TrainConfig,
    batched_forward,
    distill_ckd_head,
    distill_kd,
    train_scratch,
    train_transfer,
)
from repro.distill.caches import LogitCache
from repro.tensor import Tensor


@pytest.fixture
def toy(rng):
    """A 6-class problem with 2-class 'primitive tasks' and a perfect teacher.

    Classes are Gaussian blobs; the teacher is an analytically constructed
    linear classifier (centroid matching) that is ~perfect on the data.
    """
    dim, classes, per = 8, 6, 30
    centers = rng.standard_normal((classes, dim)) * 3
    labels = np.repeat(np.arange(classes), per)
    x = (centers[labels] + 0.4 * rng.standard_normal((len(labels), dim))).astype(np.float32)

    teacher = nn.Linear(dim, classes, rng=np.random.default_rng(0))
    teacher.weight.data = centers.astype(np.float32)
    teacher.bias.data = (-0.5 * (centers**2).sum(axis=1)).astype(np.float32)
    teacher.eval()
    return x, labels, teacher, centers


def acc(model, x, labels):
    return float((batched_forward(model, x).argmax(axis=1) == labels).mean())


class TestLogitCache:
    def test_lazy_and_consistent(self, toy):
        x, labels, teacher, _ = toy
        cache = LogitCache(teacher, x)
        assert cache._logits is None
        first = cache.logits
        assert cache._logits is not None
        assert np.allclose(cache[5], first[5])

    def test_batched_forward_eval_mode(self, toy):
        x, _, teacher, _ = toy
        teacher.train()
        batched_forward(teacher, x)
        assert teacher.training  # restored


class TestKD:
    def test_student_learns_from_teacher(self, toy):
        x, labels, teacher, _ = toy
        student = nn.Sequential(nn.Linear(8, 16, rng=np.random.default_rng(1)),
                                nn.ReLU(), nn.Linear(16, 6, rng=np.random.default_rng(2)))
        assert acc(student, x, labels) < 0.5
        distill_kd(teacher, student, x, TrainConfig(epochs=30, batch_size=32, lr=0.1, seed=0),
                   temperature=3.0)
        assert acc(student, x, labels) > 0.9

    def test_accepts_precomputed_logits(self, toy):
        x, labels, teacher, _ = toy
        logits = batched_forward(teacher, x)
        student = nn.Linear(8, 6, rng=np.random.default_rng(3))
        distill_kd(logits, student, x, TrainConfig(epochs=20, batch_size=32, lr=0.1, seed=0))
        assert acc(student, x, labels) > 0.9

    def test_conditional_restriction(self, toy):
        x, labels, teacher, _ = toy
        classes = [0, 1]
        student = nn.Linear(8, 2, rng=np.random.default_rng(4))
        distill_kd(teacher, student, x,
                   TrainConfig(epochs=25, batch_size=32, lr=0.1, seed=0),
                   class_ids=classes)
        mask = labels < 2
        assert acc(student, x[mask], labels[mask]) > 0.9


class TestCKDHead:
    def test_expert_extraction(self, toy):
        x, labels, teacher, _ = toy
        trunk = nn.Sequential(nn.Linear(8, 12, rng=np.random.default_rng(5)), nn.ReLU())
        trunk.requires_grad_(False)
        head = nn.Linear(12, 2, rng=np.random.default_rng(6))
        logits = batched_forward(teacher, x)
        history = distill_ckd_head(
            logits, trunk, head, x, class_ids=[2, 3],
            config=TrainConfig(epochs=30, batch_size=32, lr=0.1, seed=0),
            settings=CKDSettings(temperature=3.0, alpha=0.3),
        )
        expert = nn.Sequential(trunk, head)
        mask = (labels == 2) | (labels == 3)
        assert acc(expert, x[mask], labels[mask] - 2) > 0.9
        assert len(history.points) == 30

    def test_scale_transfer(self, toy):
        """With alpha>0 the expert's logits live on the teacher's scale."""
        x, labels, teacher, _ = toy
        trunk = nn.Sequential(nn.Linear(8, 12, rng=np.random.default_rng(5)), nn.ReLU())
        trunk.requires_grad_(False)
        logits = batched_forward(teacher, x)
        heads = {}
        for alpha in (0.0, 1.0):
            head = nn.Linear(12, 2, rng=np.random.default_rng(6))
            distill_ckd_head(
                logits, trunk, head, x, class_ids=[0, 1],
                config=TrainConfig(epochs=40, batch_size=32, lr=0.1, seed=0),
                settings=CKDSettings(temperature=3.0, alpha=alpha),
            )
            heads[alpha] = batched_forward(nn.Sequential(trunk, head), x)
        target = logits[:, [0, 1]]
        err_with = np.abs(heads[1.0] - target).mean()
        err_without = np.abs(heads[0.0] - target).mean()
        assert err_with < err_without  # L_scale pulls raw logits to the oracle's range


class TestBaselines:
    def test_scratch_learns_task(self, toy):
        x, labels, _, _ = toy
        mask = labels < 2
        model = nn.Sequential(nn.Linear(8, 8, rng=np.random.default_rng(8)),
                              nn.ReLU(), nn.Linear(8, 2, rng=np.random.default_rng(9)))
        train_scratch(model, x[mask], labels[mask],
                      TrainConfig(epochs=25, batch_size=16, lr=0.1, seed=0))
        assert acc(model, x[mask], labels[mask]) > 0.9

    def test_transfer_trains_head_only(self, toy):
        x, labels, _, _ = toy
        mask = labels < 2
        trunk = nn.Sequential(nn.Linear(8, 12, rng=np.random.default_rng(10)), nn.ReLU())
        trunk.requires_grad_(False)
        trunk_before = trunk[0].weight.numpy().copy()
        head = nn.Linear(12, 2, rng=np.random.default_rng(11))
        train_transfer(trunk, head, x[mask], labels[mask],
                       TrainConfig(epochs=25, batch_size=16, lr=0.1, seed=0))
        assert np.allclose(trunk[0].weight.numpy(), trunk_before)
        model = nn.Sequential(trunk, head)
        assert acc(model, x[mask], labels[mask]) > 0.9
