"""Trainer mechanics: history recording, schedules, convergence."""

import numpy as np
import pytest

from repro import nn
from repro.distill import TrainConfig, Trainer, cross_entropy
from repro.distill.trainer import History, HistoryPoint
from repro.tensor import Tensor


def linear_separable_problem(rng, n=120, dim=6, classes=3):
    """A linearly separable toy classification problem."""
    centers = rng.standard_normal((classes, dim)) * 4
    labels = rng.integers(0, classes, n)
    x = centers[labels] + 0.3 * rng.standard_normal((n, dim))
    return x.astype(np.float32), labels.astype(np.int64)


@pytest.fixture
def problem(rng):
    return linear_separable_problem(rng)


def make_trainer(model, labels, **cfg):
    def loss_fn(m, batch, idx):
        return cross_entropy(m(Tensor(batch)), labels[idx])

    return Trainer(model, loss_fn, TrainConfig(**cfg))


class TestFit:
    def test_converges_on_separable_data(self, problem):
        x, y = problem
        model = nn.Linear(6, 3, rng=np.random.default_rng(0))
        trainer = make_trainer(model, y, epochs=25, batch_size=32, lr=0.1, seed=0)
        history = trainer.fit(x)
        assert history.points[-1].loss < 0.1

    def test_history_one_point_per_epoch(self, problem):
        x, y = problem
        model = nn.Linear(6, 3)
        history = make_trainer(model, y, epochs=7, batch_size=32).fit(x)
        assert len(history.points) == 7
        assert [p.epoch for p in history.points] == list(range(1, 8))

    def test_wall_clock_monotone(self, problem):
        x, y = problem
        model = nn.Linear(6, 3)
        history = make_trainer(model, y, epochs=5, batch_size=32).fit(x)
        seconds = [p.seconds for p in history.points]
        assert all(a <= b for a, b in zip(seconds, seconds[1:]))

    def test_eval_every(self, problem):
        x, y = problem
        model = nn.Linear(6, 3)
        trainer = make_trainer(model, y, epochs=6, batch_size=32, eval_every=2)
        history = trainer.fit(x, eval_fn=lambda m: 0.5)
        evaluated = [p.epoch for p in history.points if p.accuracy is not None]
        assert evaluated == [2, 4, 6]

    def test_model_left_in_eval_mode(self, problem):
        x, y = problem
        model = nn.Sequential(nn.Linear(6, 3), nn.Dropout(0.5))
        make_trainer(model, y, epochs=1, batch_size=32).fit(x)
        assert not model.training

    def test_epochs_override(self, problem):
        x, y = problem
        model = nn.Linear(6, 3)
        history = make_trainer(model, y, epochs=10, batch_size=32).fit(x, epochs=2)
        assert len(history.points) == 2

    def test_frozen_parameters_not_updated(self, problem):
        x, y = problem
        frozen = nn.Linear(6, 6, rng=np.random.default_rng(1))
        frozen.requires_grad_(False)
        head = nn.Linear(6, 3, rng=np.random.default_rng(2))
        model = nn.Sequential(frozen, nn.ReLU(), head)
        before = frozen.weight.numpy().copy()
        make_trainer(model, y, epochs=2, batch_size=32).fit(x)
        assert np.allclose(frozen.weight.numpy(), before)

    def test_unknown_schedule_rejected(self, problem):
        x, y = problem
        with pytest.raises(ValueError):
            make_trainer(nn.Linear(6, 3), y, epochs=1, schedule="warmup")

    def test_seeded_runs_identical(self, problem):
        x, y = problem
        results = []
        for _ in range(2):
            model = nn.Linear(6, 3, rng=np.random.default_rng(5))
            history = make_trainer(model, y, epochs=3, batch_size=32, seed=7).fit(x)
            results.append(history.points[-1].loss)
        assert results[0] == pytest.approx(results[1], rel=1e-5)


class TestHistory:
    def _history(self):
        h = History()
        h.append(HistoryPoint(1, 1.0, 0.9, 0.5))
        h.append(HistoryPoint(2, 2.0, 0.5, 0.8))
        h.append(HistoryPoint(3, 3.0, 0.4, 0.75))
        return h

    def test_final_accuracy(self):
        assert self._history().final_accuracy == 0.75

    def test_best_accuracy(self):
        assert self._history().best_accuracy == 0.8

    def test_time_to_best(self):
        assert self._history().time_to_best() == 2.0

    def test_time_to_best_with_tolerance(self):
        assert self._history().time_to_best(tolerance=0.3) == 1.0

    def test_total_seconds(self):
        assert self._history().total_seconds == 3.0

    def test_curve_skips_unevaluated(self):
        h = self._history()
        h.append(HistoryPoint(4, 4.0, 0.3, None))
        assert len(h.curve()) == 3

    def test_empty_history(self):
        h = History()
        assert h.final_accuracy is None
        assert h.best_accuracy is None
        assert h.time_to_best() is None
        assert h.total_seconds == 0.0
