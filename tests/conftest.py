"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property-based tests fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_hierarchy():
    """4 superclasses x 2 classes — the micro hierarchy for fast tests."""
    from repro.data import ClassHierarchy

    return ClassHierarchy.uniform(4, 2, prefix="t")


@pytest.fixture
def tiny_dataset(tiny_hierarchy):
    """A micro synthetic dataset (8 classes, 6x6 images, 20+10 per class)."""
    from repro.data.synthetic import (
        HierarchicalImageDataset,
        SyntheticConfig,
        SyntheticImageGenerator,
    )

    generator = SyntheticImageGenerator(
        tiny_hierarchy, SyntheticConfig(image_size=6, noise_std=0.5), seed=3
    )
    return HierarchicalImageDataset(
        tiny_hierarchy, generator, train_per_class=20, test_per_class=10, seed=4
    )
