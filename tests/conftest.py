"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property-based tests fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_hierarchy():
    """4 superclasses x 2 classes — the micro hierarchy for fast tests."""
    from repro.data import ClassHierarchy

    return ClassHierarchy.uniform(4, 2, prefix="t")


@pytest.fixture
def tiny_dataset(tiny_hierarchy):
    """A micro synthetic dataset (8 classes, 6x6 images, 20+10 per class)."""
    from repro.data.synthetic import (
        HierarchicalImageDataset,
        SyntheticConfig,
        SyntheticImageGenerator,
    )

    generator = SyntheticImageGenerator(
        tiny_hierarchy, SyntheticConfig(image_size=6, noise_std=0.5), seed=3
    )
    return HierarchicalImageDataset(
        tiny_hierarchy, generator, train_per_class=20, test_per_class=10, seed=4
    )


def build_micro_pool(hierarchy, seed=3, train_per_class=40, test_per_class=15):
    """Train a micro oracle and preprocess a full pool over ``hierarchy``.

    Delegates to the one micro-pool recipe, :func:`repro.serving.demo
    .build_demo_pool`, with the training budgets the test suite has always
    used (oracle 10 epochs, library/experts 8, train seed 0).
    """
    from repro.serving.demo import build_demo_pool

    pool, data = build_demo_pool(
        hierarchy=hierarchy,
        seed=seed,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        epochs=8,
        oracle_epochs=10,
        train_seed=0,
    )
    return pool, data, pool.oracle


def assert_fused_ids_match(ids, reference_logits, classes, atol=1e-4):
    """Fused-path ids must equal the loop-path argmax, near-ties excepted.

    The fused bank folds batch norm into affines, which reorders float32
    ops: logits agree to ``allclose``, not bitwise.  An argmax comparison
    must therefore tolerate samples whose top-2 loop logits are within the
    fold round-off — on those, either class is a correct answer.
    """
    ids = np.asarray(ids)
    classes = np.asarray(classes)
    reference_logits = np.asarray(reference_logits)
    ref_ids = classes[reference_logits.argmax(axis=1)]
    mismatch = ids != ref_ids
    if not mismatch.any():
        return
    # the fused-chosen class must itself be within round-off of the top:
    # picking any merely-near-tied third class would still be a real bug
    column = {int(c): i for i, c in enumerate(classes)}
    assert np.isin(ids[mismatch], classes).all()
    mis_logits = reference_logits[mismatch]
    chosen = mis_logits[
        np.arange(mis_logits.shape[0]),
        [column[int(c)] for c in ids[mismatch]],
    ]
    margins = mis_logits.max(axis=1) - chosen
    assert (margins < atol).all(), (
        f"fused ids diverge from loop argmax with margins {margins} (atol={atol})"
    )


@pytest.fixture(scope="session")
def micro_pool():
    """(pool, data, oracle) over a 4x2 anonymous hierarchy."""
    from repro.data import ClassHierarchy

    return build_micro_pool(ClassHierarchy.uniform(4, 2, prefix="c"))


@pytest.fixture(scope="session")
def named_pool():
    """(pool, data, oracle) over a small named hierarchy (service tests)."""
    from repro.data import ClassHierarchy

    hierarchy = ClassHierarchy(
        {"pets": ["cat", "dog"], "birds": ["owl", "crow"], "fish": ["eel", "cod"]}
    )
    return build_micro_pool(hierarchy, seed=21)
