"""FusedHeadBank: batched multi-head execution vs the per-head loop."""

import numpy as np
import pytest

from repro.distill import batched_forward
from repro.models import FusedHeadBank
from repro.models.wrn import WRNHead
from repro.nn.fused import im2col_nhwc, stack_conv, stack_linear
from repro.nn.layers import Conv2d, Linear
from repro.tensor.conv import _im2col


def _consolidate(pool, n_tasks):
    names = sorted(pool.expert_names())[:n_tasks]
    network, composite = pool.consolidate(names)
    return network, composite


def _loop_logits(network, features_np):
    from repro.tensor import Tensor, no_grad

    with no_grad():
        feats = Tensor(features_np)
        sub = [head(feats) for head in network.heads]
        return Tensor.concatenate(sub, axis=1).numpy() if len(sub) > 1 else sub[0].numpy()


class TestFusedEquivalence:
    @pytest.mark.parametrize("n_tasks", [1, 2, 4])
    def test_matches_loop_across_widths(self, micro_pool, n_tasks):
        """n(Q) ∈ {1, 2, 4}: fused logits allclose to the per-head loop."""
        pool, data, _ = micro_pool
        network, _ = _consolidate(pool, n_tasks)
        features = batched_forward(network.trunk, data.test.images[:20])
        fused = network.fused_logits(features)
        loop = _loop_logits(network, features)
        assert fused.shape == loop.shape
        assert np.allclose(fused, loop, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("batch", [1, 3, 7, 33])
    def test_odd_batch_sizes(self, micro_pool, batch):
        pool, data, _ = micro_pool
        network, _ = _consolidate(pool, 3)
        images = np.concatenate([data.test.images] * 2, axis=0)[:batch]
        features = batched_forward(network.trunk, images)
        assert np.allclose(
            network.fused_logits(features),
            _loop_logits(network, features),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_end_to_end_fused_logits_match(self, micro_pool):
        """TaskSpecificModel.fused_logits == .logits (loop) within round-off."""
        from repro.core import ModelQueryEngine

        pool, data, _ = micro_pool
        model = ModelQueryEngine(pool).query(sorted(pool.expert_names()))
        x = data.test.images[:25]
        assert np.allclose(model.fused_logits(x), model.logits(x), rtol=1e-4, atol=1e-5)
        # chunked execution must agree with single-shot
        assert np.allclose(
            model.fused_logits(x, batch_size=8), model.fused_logits(x), atol=1e-6
        )

    def test_rebuilt_after_reextraction(self, tiny_hierarchy, tiny_dataset):
        """A consolidation after re-extraction stacks the *new* head weights."""
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=9, train_per_class=15)
        name = sorted(pool.expert_names())[0]
        query = sorted(pool.expert_names())[:2]
        before, _ = pool.consolidate(query)
        x = data.test.images[:10]
        feats = batched_forward(before.trunk, x)
        logits_before = before.fused_logits(feats)

        from repro.distill import TrainConfig

        # re-extract under a different budget so the new head's weights
        # actually move (same budget would deterministically reproduce it)
        pool.extract_expert(
            name,
            data.train.images,
            train_config=TrainConfig(epochs=1, batch_size=32, lr=0.05, seed=1),
        )
        after, _ = pool.consolidate(query)
        logits_after = after.fused_logits(feats)
        # the new bank reflects the retrained head (weights moved)...
        assert not np.allclose(logits_before, logits_after, atol=1e-6)
        # ...and still matches its own loop path exactly enough
        assert np.allclose(
            logits_after, _loop_logits(after, feats), rtol=1e-4, atol=1e-5
        )

    def test_invalidate_fused_restacks_mutated_weights(self, micro_pool):
        """Direct in-place weight mutation needs an explicit invalidate."""
        pool, data, _ = micro_pool
        network, _ = _consolidate(pool, 2)
        features = batched_forward(network.trunk, data.test.images[:8])
        stale = network.fused_logits(features).copy()
        head = network.heads[0]
        head.fc.bias.data = head.fc.bias.data + 1.0
        try:
            assert np.allclose(network.fused_logits(features), stale)  # stale bank
            network.invalidate_fused()
            fresh = network.fused_logits(features)
            assert np.allclose(fresh, _loop_logits(network, features), rtol=1e-4, atol=1e-5)
            assert not np.allclose(fresh, stale, atol=1e-6)
        finally:
            head.fc.bias.data = head.fc.bias.data - 1.0
            network.invalidate_fused()


class TestFusedPrimitives:
    def test_im2col_nhwc_matches_nchw_reference(self, rng):
        x = rng.standard_normal((3, 5, 5, 4)).astype(np.float32)
        cols, oh, ow = im2col_nhwc(x, 3, 3, 2, 1)
        ref, ref_oh, ref_ow = _im2col(
            np.ascontiguousarray(x.transpose(0, 3, 1, 2)), 3, 3, 2, 1
        )
        assert (oh, ow) == (ref_oh, ref_ow)
        # reference columns are C-major (C, KH, KW); ours KH, KW, C
        ref_perm = ref.reshape(-1, 4, 3, 3).transpose(0, 2, 3, 1).reshape(cols.shape)
        assert np.allclose(cols, ref_perm)

    def test_stack_conv_rejects_mismatched_geometry(self, rng):
        a = Conv2d(4, 8, 3, stride=1, padding=1, rng=rng)
        b = Conv2d(4, 8, 3, stride=2, padding=1, rng=rng)
        with pytest.raises(ValueError):
            stack_conv([a, b])

    def test_stack_linear_pads_mixed_widths(self, rng):
        a, b = Linear(6, 2, rng=rng), Linear(6, 4, rng=rng)
        bank = stack_linear([a, b])
        feats = rng.standard_normal((2, 5, 6)).astype(np.float32)
        out = bank.concatenate(bank(feats))
        assert out.shape == (5, 6)
        ref_a = feats[0] @ a.weight.data.T + a.bias.data
        ref_b = feats[1] @ b.weight.data.T + b.bias.data
        assert np.allclose(out, np.concatenate([ref_a, ref_b], axis=1), atol=1e-5)

    def test_bank_rejects_mismatched_heads(self, rng):
        small = WRNHead(10, 1.0, 0.25, num_classes=2, rng=rng)
        wide = WRNHead(10, 1.0, 0.5, num_classes=2, rng=rng)
        with pytest.raises(ValueError):
            FusedHeadBank([small, wide])

    def test_bank_rejects_empty(self):
        with pytest.raises(ValueError):
            FusedHeadBank([])
