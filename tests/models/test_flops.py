"""Parameter/FLOPs accounting — including exact fidelity to paper Table 1."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    BranchedSpecialistNet,
    WideResNet,
    WRNHead,
    WRNTrunk,
    build_wrn,
    count_flops,
    count_params,
    profile,
)


class TestPaperFidelity:
    """Our WRN implementation reproduces the paper's Table 1 cost columns.

    This pins down that the architecture family is implemented exactly as
    the paper describes (conv1=16ch, conv_i = 16·2^(i-2)·k, pre-activation
    blocks, (k_c, k_s) split)."""

    def test_cifar_oracle_wrn40_4_4(self):
        model = build_wrn("cifar100/oracle", seed=0)
        assert count_params(model) == pytest.approx(8.97e6, rel=0.01)
        assert count_flops(model, (3, 32, 32)) == pytest.approx(1.30e9, rel=0.01)

    def test_cifar_library_wrn16_1_1(self):
        model = build_wrn("cifar100/library", seed=0)
        assert count_params(model) == pytest.approx(0.18e6, rel=0.02)
        assert count_flops(model, (3, 32, 32)) == pytest.approx(0.03e9, rel=0.12)

    def test_tiny_oracle_wrn16_10_10(self):
        model = build_wrn("tiny-imagenet/oracle", seed=0)
        assert count_params(model) == pytest.approx(17.24e6, rel=0.01)
        assert count_flops(model, (3, 32, 32)) == pytest.approx(2.42e9, rel=0.01)

    def test_tiny_library_wrn16_2_2(self):
        model = build_wrn("tiny-imagenet/library", seed=0)
        assert count_params(model) == pytest.approx(0.72e6, rel=0.01)
        assert count_flops(model, (3, 32, 32)) == pytest.approx(0.10e9, rel=0.03)

    def test_expert_two_orders_smaller_than_oracle(self):
        """Table 2: specialists use ~150x (CIFAR) / ~96x (Tiny) fewer params."""
        oracle = build_wrn("cifar100/oracle", seed=0)
        expert = build_wrn("cifar100/expert", seed=0)
        ratio = count_params(oracle) / count_params(expert)
        assert 100 < ratio < 200
        flops_ratio = count_flops(oracle, (3, 32, 32)) / count_flops(expert, (3, 32, 32))
        assert 40 < flops_ratio < 90  # paper reports ~65x


class TestProfiler:
    def test_conv_macs(self):
        conv = nn.Conv2d(3, 8, 3, stride=1, padding=1)
        macs, shape = profile(conv, (3, 8, 8))
        assert shape == (8, 8, 8)
        assert macs == 8 * 8 * 8 * 3 * 9

    def test_linear_macs(self):
        fc = nn.Linear(10, 5)
        macs, shape = profile(fc, (10,))
        assert macs == 55  # 50 + 5 bias
        assert shape == (5,)

    def test_linear_shape_mismatch(self):
        with pytest.raises(ValueError):
            profile(nn.Linear(10, 5), (3,))

    def test_sequential_accumulates(self):
        seq = nn.Sequential(nn.Linear(4, 4), nn.ReLU(), nn.Linear(4, 2))
        macs, shape = profile(seq, (4,))
        assert macs == (16 + 4) + 0 + (8 + 2)
        assert shape == (2,)

    def test_pooling_shapes(self):
        macs, shape = profile(nn.AvgPool2d(2), (4, 8, 8))
        assert shape == (4, 4, 4)

    def test_global_pool(self):
        macs, shape = profile(nn.GlobalAvgPool2d(), (16, 4, 4))
        assert shape == (16,)

    def test_unknown_module_raises(self):
        class Strange(nn.Module):
            pass

        with pytest.raises(TypeError):
            profile(Strange(), (3, 4, 4))

    def test_wrn_profile_matches_forward_shape(self, rng):
        from repro.tensor import Tensor, no_grad

        net = WideResNet(10, 1, 0.5, num_classes=7)
        _, shape = profile(net, (3, 8, 8))
        assert shape == (7,)

    def test_branched_flops_scale_with_branches(self):
        trunk = WRNTrunk(10, 1, 0.25)
        heads1 = [("a", WRNHead(10, 1, 0.25, 3))]
        heads3 = [(f"h{i}", WRNHead(10, 1, 0.25, 3)) for i in range(3)]
        f1 = count_flops(BranchedSpecialistNet(trunk, heads1), (3, 8, 8))
        f3 = count_flops(BranchedSpecialistNet(trunk, heads3), (3, 8, 8))
        trunk_flops = count_flops(trunk, (3, 8, 8)) if False else None
        assert f3 > f1
        assert f3 < 3 * f1  # trunk is shared: sub-linear growth

    def test_params_equals_module_count(self):
        net = WideResNet(10, 2, 1, num_classes=5)
        assert count_params(net) == net.num_parameters()


class TestZoo:
    def test_get_config_known(self):
        from repro.models import get_config

        cfg = get_config("cifar100/oracle")
        assert cfg.depth == 40 and cfg.k_c == 4

    def test_get_config_unknown(self):
        from repro.models import get_config

        with pytest.raises(KeyError):
            get_config("nope/nope")

    def test_build_overrides_classes(self):
        model = build_wrn("synth-cifar/expert", num_classes=9, seed=0)
        assert model.num_classes == 9

    def test_config_name(self):
        from repro.models import get_config

        assert get_config("cifar100/oracle").name == "WRN-40-(4, 4)"

    def test_seeded_builds_identical(self, rng):
        from repro.tensor import Tensor, no_grad

        m1 = build_wrn("synth-cifar/expert", seed=3)
        m2 = build_wrn("synth-cifar/expert", seed=3)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        m1.eval(), m2.eval()
        with no_grad():
            assert np.allclose(m1(x).numpy(), m2(x).numpy())
