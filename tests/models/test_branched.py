"""The branched task-specific architecture (paper Fig. 3) and its
parameter-efficiency property (§5.1)."""

import numpy as np
import pytest

from repro.models import (
    BranchedSpecialistNet,
    WideResNet,
    WRNHead,
    WRNTrunk,
    count_params,
)
from repro.tensor import Tensor, no_grad


@pytest.fixture
def trunk():
    return WRNTrunk(10, 1, 0.25, library_level=3, rng=np.random.default_rng(0))


def make_head(num_classes, seed=1):
    return WRNHead(10, 1, 0.25, num_classes, library_level=3, rng=np.random.default_rng(seed))


class TestAssembly:
    def test_needs_heads(self, trunk):
        with pytest.raises(ValueError):
            BranchedSpecialistNet(trunk, [])

    def test_duplicate_names_rejected(self, trunk):
        with pytest.raises(ValueError):
            BranchedSpecialistNet(trunk, [("a", make_head(2)), ("a", make_head(2))])

    def test_num_classes_is_sum(self, trunk):
        net = BranchedSpecialistNet(trunk, [("a", make_head(2)), ("b", make_head(3, 2))])
        assert net.num_classes == 5
        assert net.n_branches == 2

    def test_weights_shared_by_reference(self, trunk):
        """Consolidation must not copy weights — that is what makes it
        train-free and instantaneous."""
        head = make_head(2)
        net = BranchedSpecialistNet(trunk, [("a", head)])
        assert net.trunk is trunk
        assert net.heads[0] is head


class TestLogitConcatenation:
    def test_unified_logits_match_subblocks(self, trunk, rng):
        heads = [("a", make_head(2, 1)), ("b", make_head(3, 2)), ("c", make_head(4, 3))]
        net = BranchedSpecialistNet(trunk, heads)
        net.eval()
        x = Tensor(rng.standard_normal((5, 3, 8, 8)).astype(np.float32))
        with no_grad():
            unified = net(x).numpy()
            subs = net.sub_logits(x)
        assert unified.shape == (5, 9)
        assert np.allclose(unified[:, 0:2], subs["a"].numpy(), atol=1e-5)
        assert np.allclose(unified[:, 2:5], subs["b"].numpy(), atol=1e-5)
        assert np.allclose(unified[:, 5:9], subs["c"].numpy(), atol=1e-5)

    def test_logit_slices(self, trunk):
        net = BranchedSpecialistNet(trunk, [("x", make_head(2)), ("y", make_head(5, 2))])
        slices = net.logit_slices()
        assert slices["x"] == slice(0, 2)
        assert slices["y"] == slice(2, 7)

    def test_single_branch_equals_head_output(self, trunk, rng):
        head = make_head(3)
        net = BranchedSpecialistNet(trunk, [("only", head)])
        net.eval()
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            expected = head(trunk(x)).numpy()
            got = net(x).numpy()
        assert np.allclose(got, expected, atol=1e-6)

    def test_branch_order_defines_layout(self, trunk, rng):
        ha, hb = make_head(2, 1), make_head(2, 2)
        net_ab = BranchedSpecialistNet(trunk, [("a", ha), ("b", hb)])
        net_ba = BranchedSpecialistNet(trunk, [("b", hb), ("a", ha)])
        net_ab.eval(), net_ba.eval()
        x = Tensor(rng.standard_normal((3, 3, 8, 8)).astype(np.float32))
        with no_grad():
            ab = net_ab(x).numpy()
            ba = net_ba(x).numpy()
        assert np.allclose(ab[:, :2], ba[:, 2:], atol=1e-6)
        assert np.allclose(ab[:, 2:], ba[:, :2], atol=1e-6)


class TestParameterEfficiency:
    def test_branches_linear_single_wide_quadratic(self):
        """Paper §5.1: n(Q) conv4 branches of width 64·k_s cost ~n(Q)× one
        branch, whereas one conv4 of width n(Q)·64·k_s costs ~n(Q)²×."""
        n = 4
        trunk = WRNTrunk(10, 1, 0.25, library_level=3)
        one_branch = count_params(make_head(3))
        branched = BranchedSpecialistNet(
            trunk, [(f"t{i}", make_head(3, i)) for i in range(n)]
        )
        branched_heads = count_params(branched) - count_params(trunk)
        single_wide = count_params(
            WRNHead(10, 1, 0.25 * n, num_classes=3 * n, library_level=3)
        )
        assert branched_heads == pytest.approx(n * one_branch, rel=0.05)
        assert single_wide > 1.5 * branched_heads  # super-linear blow-up

        # At paper-scale widths the conv4 self-connection dominates and the
        # single wide block approaches the full n^2/n = n ratio.
        wide_one = count_params(WRNHead(16, 4, 1.0, num_classes=5))
        wide_single = count_params(WRNHead(16, 4, 1.0 * n, num_classes=5 * n))
        assert wide_single > 0.7 * n * (n * wide_one) / n  # ~n x the n branches

    def test_arch_name_lists_branches(self, trunk):
        net = BranchedSpecialistNet(trunk, [("a", make_head(2)), ("b", make_head(2, 2))])
        assert net.arch_name() == "WRN-10-(1, [0.25, 0.25]^T)"
