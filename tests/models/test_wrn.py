"""Wide residual networks: structure, shapes, the (k_c, k_s) split."""

import numpy as np
import pytest

from repro.models import (
    BasicBlock,
    WideResNet,
    WRNHead,
    WRNTrunk,
    scaled_channels,
    wrn_group_widths,
)
from repro.tensor import Tensor, no_grad


class TestWidths:
    def test_scaled_channels_rounding(self):
        assert scaled_channels(64, 0.25) == 16
        assert scaled_channels(64, 1) == 64
        assert scaled_channels(16, 0.01) == 1  # floor at one channel

    def test_group_widths_follow_paper(self):
        # conv_i has 16 * 2^(i-2) * k channels; conv1 fixed at 16 (paper §5.1)
        assert wrn_group_widths(4, 4) == (16, 64, 128, 256)
        assert wrn_group_widths(1, 0.25) == (16, 16, 32, 16)
        assert wrn_group_widths(2, 0.25) == (16, 32, 64, 16)

    def test_kc_ks_independent(self):
        w = wrn_group_widths(2, 8)
        assert w[1] == 32 and w[2] == 64  # controlled by k_c
        assert w[3] == 512  # controlled by k_s


class TestDepthValidation:
    @pytest.mark.parametrize("depth", [10, 16, 22, 28, 40])
    def test_valid_depths(self, depth):
        WideResNet(depth, 1, 1, num_classes=4)

    @pytest.mark.parametrize("depth", [9, 12, 15, 4])
    def test_invalid_depths(self, depth):
        with pytest.raises(ValueError):
            WideResNet(depth, 1, 1, num_classes=4)

    def test_blocks_per_group(self):
        net16 = WideResNet(16, 1, 1, num_classes=2)
        assert len(net16.trunk.groups[0].blocks) == 2  # (16-4)/6
        net10 = WideResNet(10, 1, 1, num_classes=2)
        assert len(net10.trunk.groups[0].blocks) == 1


class TestForwardShapes:
    def test_output_shape(self, rng):
        net = WideResNet(10, 1, 0.5, num_classes=7)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            net.eval()
            assert net(x).shape == (2, 7)

    def test_spatial_downsampling(self, rng):
        net = WideResNet(10, 1, 1, num_classes=3)
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        with no_grad():
            net.eval()
            feats = net.features(x)
        # conv2 stride1, conv3 stride2 -> 16/2 = 8 at library level 3
        assert feats.shape == (1, 32, 8, 8)

    def test_trunk_head_compose(self, rng):
        net = WideResNet(10, 1, 1, num_classes=5)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            net.eval()
            direct = net(x).numpy()
            composed = net.head(net.trunk(x)).numpy()
        assert np.allclose(direct, composed)

    def test_arch_name(self):
        assert WideResNet(16, 1, 0.25, 5).arch_name() == "WRN-16-(1, 0.25)"


class TestLibraryLevel:
    def test_level3_trunk_holds_conv1_to_conv3(self):
        net = WideResNet(10, 2, 1, num_classes=4, library_level=3)
        assert len(net.trunk.groups) == 2  # conv2, conv3
        assert len(net.head.groups) == 1  # conv4
        assert net.trunk.out_channels == 64  # 32 * k_c

    def test_level2_trunk_holds_conv1_to_conv2(self):
        net = WideResNet(10, 2, 1, num_classes=4, library_level=2)
        assert len(net.trunk.groups) == 1
        assert len(net.head.groups) == 2
        assert net.trunk.out_channels == 32  # 16 * k_c

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            WRNTrunk(10, 1, 1, library_level=4)

    def test_level2_forward(self, rng):
        net = WideResNet(10, 1, 1, num_classes=4, library_level=2)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            net.eval()
            assert net(x).shape == (2, 4)


class TestBasicBlock:
    def test_projection_when_channels_change(self):
        block = BasicBlock(8, 16, stride=1)
        assert block.needs_projection

    def test_projection_when_strided(self):
        block = BasicBlock(8, 8, stride=2)
        assert block.needs_projection

    def test_identity_shortcut(self):
        block = BasicBlock(8, 8, stride=1)
        assert not block.needs_projection
        assert block.shortcut is None

    def test_residual_path(self, rng):
        """With zeroed convolutions the block must be the identity."""
        block = BasicBlock(4, 4, stride=1)
        block.conv1.weight.data[:] = 0
        block.conv2.weight.data[:] = 0
        x = Tensor(rng.standard_normal((1, 4, 5, 5)).astype(np.float32))
        block.eval()
        with no_grad():
            out = block(x)
        assert np.allclose(out.numpy(), x.numpy(), atol=1e-5)

    def test_gradients_reach_all_params(self, rng):
        block = BasicBlock(4, 8, stride=2)
        x = Tensor(rng.standard_normal((2, 4, 6, 6)).astype(np.float32))
        block(x).sum().backward()
        for name, p in block.named_parameters():
            assert p.grad is not None, name


class TestHead:
    def test_head_output_classes(self, rng):
        head = WRNHead(10, 1, 0.25, num_classes=3)
        feats = Tensor(rng.standard_normal((2, 32, 4, 4)).astype(np.float32))
        head.eval()
        with no_grad():
            assert head(feats).shape == (2, 3)

    def test_head_explicit_in_channels(self, rng):
        head = WRNHead(10, 1, 0.25, num_classes=3, in_channels=48)
        feats = Tensor(rng.standard_normal((1, 48, 4, 4)).astype(np.float32))
        head.eval()
        with no_grad():
            assert head(feats).shape == (1, 3)
