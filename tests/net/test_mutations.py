"""Fenced, idempotent mutation frames: replay dedup, epoch fencing, auth.

The crash-safety contract of the mutation write path:

* a retried mutation (same ``mutation_id``) is acknowledged as a
  **replay** and applies exactly once, even across a real process
  boundary;
* a mutation carrying an epoch below the worker's is fenced out with a
  typed :class:`StaleEpochError` (and counted);
* a payload whose blake2b digest does not match the frame's is refused
  before touching the pool;
* an unauthenticated peer is silently read-only — mutation frames get
  ``PermissionError``, reads keep working;
* an online reshard (grow 2→3, shrink back) under a SIGKILL chaos monkey
  is invisible to clients: zero errors, bit-identical payloads.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.cluster import ClusterConfig, ClusterGateway, PoolShard
from repro.cluster.metrics import ClusterMetrics
from repro.core.server import serialize_expert_heads
from repro.net import (
    ChaosMonkey,
    NetworkedCluster,
    RemoteShardClient,
    ShardServer,
    StaleEpochError,
    payload_digest,
)
from repro.net.frame import (
    CODEC_BINARY,
    FrameError,
    MsgType,
    pack_body,
)
from repro.obs import JOURNAL
from repro.serving import GatewayConfig


@pytest.fixture()
def mutable_shard(net_pool):
    """One PoolShard + a started ShardServer + connected client."""
    pool, _data = net_pool
    names = sorted(pool.expert_names())
    shard = PoolShard(0, pool, names, GatewayConfig(max_workers=2))
    server = ShardServer(shard)
    server.start()
    client = RemoteShardClient(server.address)
    yield pool, shard, names, server, client
    client.close()
    server.close()
    shard.close()


# ----------------------------------------------------------------------
# Replay dedup: exactly-once apply
# ----------------------------------------------------------------------
def test_retried_mutation_is_acked_as_replay_not_reapplied(mutable_shard):
    pool, shard, names, server, client = mutable_shard
    victim = names[0]
    baseline = shard.serve((victim,), "raw+zlib").payload
    payload = serialize_expert_heads(pool, [victim])

    (drop_ack,) = client.drop_heads([victim], epoch=1, mutation_id="drop-1")
    assert drop_ack["epoch"] == 1 and not drop_ack.get("replayed")
    assert victim not in shard.pool.experts

    (ack1,) = client.install_heads(payload, epoch=1, mutation_id="ins-1")
    assert not ack1.get("replayed")
    version_after_install = shard.pool.expert_version(victim)

    # the retry: same mutation_id — acked, counted, NOT re-applied
    (ack2,) = client.install_heads(payload, epoch=1, mutation_id="ins-1")
    assert ack2.get("replayed") is True
    assert shard.pool.expert_version(victim) == version_after_install
    assert shard.serve((victim,), "raw+zlib").payload == baseline

    counters = client.stats().get("counters", {})
    assert counters.get("mutations_applied") == 2  # drop + one install
    assert counters.get("mutations_replayed") == 1


def test_replay_across_process_boundary_applies_exactly_once(net_pool):
    """The two-process version: a forked worker journals mutation ids."""
    pool, _data = net_pool
    config = ClusterConfig(num_shards=1, workers_per_shard=2)
    with NetworkedCluster(pool, config) as deployment:
        gateway = deployment.gateway
        remote = gateway.shards[0]
        assert remote.supports_mutations
        victim = sorted(pool.expert_names())[0]
        payload = serialize_expert_heads(pool, [victim])
        epoch = remote.info["epoch"] + 1

        (ack1,) = remote.install_heads(
            payload, epoch=epoch, mutation_id="xproc-1"
        )
        (ack2,) = remote.install_heads(
            payload, epoch=epoch, mutation_id="xproc-1"
        )
        assert not ack1.get("replayed")
        assert ack2.get("replayed") is True
        assert ack1["epoch"] == ack2["epoch"] == epoch
        assert remote.replica_epochs() == {0: epoch}

        counters = remote.stats().get("counters", {})
        assert counters.get("mutations_applied") == 1
        assert counters.get("mutations_replayed") == 1
    assert deployment.fleet.leaked_processes() == []


# ----------------------------------------------------------------------
# Epoch fencing
# ----------------------------------------------------------------------
def test_stale_epoch_is_fenced_with_typed_error(mutable_shard):
    _pool, _shard, _names, server, client = mutable_shard
    # an empty drop is a pure epoch fence: advances the worker's epoch
    (ack,) = client.drop_heads([], epoch=5, mutation_id="fence-5")
    assert ack["epoch"] == 5
    assert server.epoch == 5
    assert client.replica_epochs() == {0: 5}

    with pytest.raises(StaleEpochError, match="epoch 3 is stale"):
        client.drop_heads([], epoch=3, mutation_id="late-3")
    counters = client.stats().get("counters", {})
    assert counters.get("stale_epoch_rejects") == 1

    # equal epochs are NOT stale — re-broadcasts at the current epoch
    # (expert pushes between rebalances) must land
    (ack,) = client.drop_heads([], epoch=5, mutation_id="fence-5b")
    assert ack["epoch"] == 5


def test_replay_ack_wins_over_epoch_fence(mutable_shard):
    """A duplicate of an applied mutation is owed its ack even after the
    epoch has moved on — the retrying client must not see a fence."""
    _pool, _shard, _names, server, client = mutable_shard
    client.drop_heads([], epoch=2, mutation_id="m-a")
    client.drop_heads([], epoch=7, mutation_id="m-b")  # epoch now 7
    (ack,) = client.drop_heads([], epoch=2, mutation_id="m-a")  # the retry
    assert ack.get("replayed") is True
    assert server.epoch == 7


# ----------------------------------------------------------------------
# Digest verification
# ----------------------------------------------------------------------
def test_corrupted_payload_is_refused_before_apply(mutable_shard):
    pool, shard, names, _server, client = mutable_shard
    victim = names[0]
    version = shard.pool.expert_version(victim)
    payload = serialize_expert_heads(pool, [victim])
    meta = {
        "mutation_id": "corrupt-1",
        "epoch": 1,
        "digest": payload_digest(payload[:-1] + b"\x00"),  # wrong bytes
    }
    with pytest.raises(FrameError, match="digest"):
        client._broadcast_mutation(
            MsgType.INSTALL_HEADS, pack_body(meta, payload), CODEC_BINARY
        )
    # nothing applied, nothing journaled: a corrected retry under the
    # same id must still go through
    assert shard.pool.expert_version(victim) == version
    meta["digest"] = payload_digest(payload)
    (ack,) = client._broadcast_mutation(
        MsgType.INSTALL_HEADS, pack_body(meta, payload), CODEC_BINARY
    )
    assert not ack.get("replayed")


# ----------------------------------------------------------------------
# Auth gating: unauthenticated peers are read-only
# ----------------------------------------------------------------------
def test_unauthenticated_peer_is_read_only(net_pool):
    pool, _data = net_pool
    names = sorted(pool.expert_names())
    shard = PoolShard(0, pool, names, GatewayConfig(max_workers=2))
    server = ShardServer(shard, auth_token="sekrit")
    server.start()
    try:
        with RemoteShardClient(server.address) as anon:
            # no token: "mutations" is withheld at HELLO, reads still work
            assert anon.supports_mutations is False
            expected = shard.fetch_heads((names[0],), "raw+zlib")
            assert anon.fetch_heads((names[0],), "raw+zlib") == expected
            with pytest.raises(PermissionError, match="auth token"):
                anon.drop_heads([], epoch=1, mutation_id="anon-1")
        with RemoteShardClient(server.address, auth_token="wrong") as impostor:
            assert impostor.supports_mutations is False
            with pytest.raises(PermissionError):
                impostor.drop_heads([], epoch=1, mutation_id="bad-1")
        with RemoteShardClient(server.address, auth_token="sekrit") as trusted:
            assert trusted.supports_mutations is True
            (ack,) = trusted.drop_heads([], epoch=1, mutation_id="ok-1")
            assert ack["epoch"] == 1
    finally:
        server.close()
        shard.close()


def test_networked_cluster_auto_provisions_a_shared_token(net_pool):
    pool, _data = net_pool
    with NetworkedCluster(pool, ClusterConfig(num_shards=1)) as deployment:
        assert deployment.auth_token  # generated, not None
        assert deployment.gateway.shards[0].supports_mutations
    assert deployment.fleet.leaked_processes() == []


# ----------------------------------------------------------------------
# Chaos reshard: SIGKILL mid-reshard is invisible to clients
# ----------------------------------------------------------------------
RESHARD_CONFIG = ClusterConfig(
    num_shards=2,
    workers_per_shard=2,
    replicas_per_shard=2,
    # front-end caches off so queries keep crossing the wire through the
    # reshard + kill window instead of being absorbed by caches
    composite_model_cache_bytes=0,
    composite_payload_cache_bytes=0,
    remote_head_cache_bytes=0,
    result_cache_bytes=0,
)


def test_chaos_reshard_grow_and_shrink_is_invisible_to_clients(net_pool):
    pool, _data = net_pool
    with ClusterGateway(
        pool, ClusterConfig(num_shards=2, workers_per_shard=2)
    ) as local:
        names = sorted(local.available_tasks())
        queries = [(n,) for n in names] + [(names[0], names[1])]
        expected = {q: local.serve(q).payload for q in queries}
    JOURNAL.reset()
    JOURNAL.enable(service="test")
    try:
        with NetworkedCluster(pool, RESHARD_CONFIG) as deployment:
            gateway = deployment.gateway
            monkey = ChaosMonkey(deployment.fleet, random.Random(7))
            stop = threading.Event()
            errors: list = []
            results: list = []

            def drive() -> None:
                i = 0
                while not stop.is_set():
                    query = queries[i % len(queries)]
                    try:
                        results.append((query, gateway.serve(query).payload))
                    except Exception as exc:  # noqa: BLE001 - the assertion
                        errors.append(exc)
                    i += 1
                    time.sleep(0.02)  # keep traffic flowing, don't saturate

            threads = [threading.Thread(target=drive) for _ in range(2)]
            for thread in threads:
                thread.start()
            killed = []
            try:
                time.sleep(0.2)
                # SIGKILL one worker *while* the reshard broadcast runs:
                # the mutation retry loop must ride out the respawn
                killer = threading.Timer(0.05, lambda: killed.append(monkey.kill_one()))
                killer.start()
                report_grow = gateway.reshard(3)
                killer.join()
                assert killed and killed[0] is not None
                assert monkey.wait_respawned(killed[0], timeout=60.0)
                time.sleep(0.3)  # load on the grown topology
                report_shrink = gateway.reshard(2)
                time.sleep(0.3)  # load after the shrink
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60.0)

            assert errors == []
            assert len(results) > len(queries)
            for query, payload in results:
                assert payload == expected[query], query

            # epochs advanced monotonically; both reshards journaled
            assert report_grow.epoch >= 1
            assert report_shrink.epoch > report_grow.epoch
            assert gateway.epoch == report_shrink.epoch
            reshards = [
                e for e in JOURNAL.events() if e["kind"] == "reshard"
            ]
            assert [(e["old_shards"], e["new_shards"]) for e in reshards] == [
                (2, 3),
                (3, 2),
            ]

            # the fleet is back to 2 shards x 2 replicas, all live
            assert {
                (h.shard_id, h.replica_id) for h in deployment.fleet.workers
            } == {(0, 0), (0, 1), (1, 0), (1, 1)}
            snapshot = gateway.unified_snapshot()
            assert snapshot["epoch"] == gateway.epoch
            counters = snapshot.get("counters", {})
            assert counters.get("reshards") == 2
        assert deployment.fleet.leaked_processes() == []
    finally:
        JOURNAL.reset()
