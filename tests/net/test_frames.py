"""Frame-protocol property tests: round trips and malformed-input rejection."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.frame import (
    CODEC_BINARY,
    CODEC_JSON,
    CODEC_NAMES,
    FLAG_END,
    HEADER_BYTES,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    MsgType,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    ProtocolMismatch,
    codec_for_transport,
    encode_frame,
    encode_message,
    pack_body,
    transport_for_codec,
    unpack_body,
)

_MSG_TYPES = st.sampled_from(
    [MsgType.HELLO, MsgType.FETCH_HEADS, MsgType.SERVE, MsgType.PREDICTED]
)
_CODECS = st.sampled_from(sorted(CODEC_NAMES))


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
@given(
    msg_type=_MSG_TYPES,
    request_id=st.integers(min_value=0, max_value=2**64 - 1),
    payload=st.binary(max_size=4096),
    codec=_CODECS,
)
def test_single_frame_round_trip(msg_type, request_id, payload, codec):
    decoder = FrameDecoder()
    frames = decoder.feed(encode_frame(msg_type, request_id, payload, codec))
    assert len(frames) == 1
    (frame,) = frames
    assert frame.msg_type == msg_type
    assert frame.request_id == request_id
    assert frame.payload == payload
    assert frame.codec == codec
    assert frame.last
    assert decoder.pending_bytes == 0


@given(
    payload=st.binary(min_size=0, max_size=8192),
    chunk_bytes=st.integers(min_value=1, max_value=1024),
    request_id=st.integers(min_value=0, max_value=2**32),
)
def test_chunked_message_reassembles(payload, chunk_bytes, request_id):
    wire = b"".join(
        encode_message(MsgType.HEADS, request_id, payload, CODEC_BINARY, chunk_bytes)
    )
    frames = FrameDecoder().feed(wire)
    assert frames, "even an empty message yields one terminal frame"
    assert all(f.request_id == request_id for f in frames)
    assert all(not f.last for f in frames[:-1])
    assert frames[-1].last
    assert b"".join(f.payload for f in frames) == payload


@given(payload=st.binary(max_size=2048), split=st.integers(min_value=1, max_value=64))
def test_decoder_handles_arbitrary_feed_boundaries(payload, split):
    """A truncated frame stays pending; the remainder completes it."""
    wire = encode_frame(MsgType.SERVE, 7, payload, CODEC_BINARY)
    decoder = FrameDecoder()
    collected = []
    for start in range(0, len(wire), split):
        collected.extend(decoder.feed(wire[start : start + split]))
    assert len(collected) == 1
    assert collected[0].payload == payload
    assert decoder.pending_bytes == 0


def test_truncated_frame_is_not_yielded():
    wire = encode_frame(MsgType.PING, 1, b"x" * 100)
    decoder = FrameDecoder()
    assert decoder.feed(wire[:-1]) == []
    assert decoder.pending_bytes == len(wire) - 1
    (frame,) = decoder.feed(wire[-1:])
    assert frame.payload == b"x" * 100


# ----------------------------------------------------------------------
# Malformed input
# ----------------------------------------------------------------------
def _header(magic=MAGIC, version=PROTOCOL_VERSION, msg=MsgType.PING,
            flags=FLAG_END, codec=CODEC_JSON, request_id=1, length=0) -> bytes:
    return struct.pack("<4sBBBBQI", magic, version, msg, flags, codec, request_id, length)


def test_bad_magic_raises():
    with pytest.raises(FrameError, match="magic"):
        FrameDecoder().feed(_header(magic=b"HTTP"))


def test_version_mismatch_raises_protocol_mismatch():
    with pytest.raises(ProtocolMismatch, match="protocol"):
        FrameDecoder().feed(_header(version=PROTOCOL_VERSION + 1))


def test_oversize_declared_payload_raises():
    with pytest.raises(FrameError, match="cap"):
        FrameDecoder().feed(_header(length=MAX_PAYLOAD_BYTES + 1))


def test_oversize_encode_raises():
    class _Huge(bytes):
        def __len__(self) -> int:  # avoid allocating 64 MiB in a unit test
            return MAX_PAYLOAD_BYTES + 1

    with pytest.raises(FrameError, match="chunk"):
        encode_frame(MsgType.HEADS, 1, _Huge())


def test_unknown_codec_tag_rejected_everywhere():
    with pytest.raises(FrameError, match="codec"):
        encode_frame(MsgType.HEADS, 1, b"", codec=99)
    with pytest.raises(FrameError, match="codec"):
        FrameDecoder().feed(_header(codec=99))
    with pytest.raises(FrameError, match="codec"):
        transport_for_codec(99)
    with pytest.raises(FrameError, match="transport"):
        codec_for_transport("carrier-pigeon")


def test_transport_codec_tags_round_trip():
    from repro.core.server import TRANSPORTS

    for transport in TRANSPORTS:
        assert transport_for_codec(codec_for_transport(transport)) == transport


# ----------------------------------------------------------------------
# Binary bodies
# ----------------------------------------------------------------------
@given(blob=st.binary(max_size=2048), count=st.integers(min_value=0, max_value=99))
def test_body_round_trip(blob, count):
    meta, out = unpack_body(pack_body({"n": count, "s": "x"}, blob))
    assert meta == {"n": count, "s": "x"}
    assert out == blob


def test_truncated_body_raises():
    packed = pack_body({"k": 1}, b"tail")
    with pytest.raises(FrameError, match="meta"):
        unpack_body(packed[:2])
    with pytest.raises(FrameError, match="truncated"):
        unpack_body(packed[:6])


def test_header_size_constant_matches_struct():
    assert len(_header()) == HEADER_BYTES


# ----------------------------------------------------------------------
# Message reassembly limits
# ----------------------------------------------------------------------
def test_assembler_completes_messages():
    from repro.net.frame import Frame, MessageAssembler

    assembler = MessageAssembler()
    assert assembler.add(Frame(MsgType.HEADS, 9, b"ab", CODEC_BINARY, flags=0)) is None
    assert assembler.partial_messages == 1
    done = assembler.add(Frame(MsgType.HEADS, 9, b"cd", CODEC_BINARY, flags=FLAG_END))
    assert done == (MsgType.HEADS, CODEC_BINARY, 9, b"abcd")
    assert assembler.partial_messages == 0


def test_runaway_chunk_stream_rejected():
    """Non-terminal frames must not grow a message past the aggregate cap."""
    from repro.net.frame import Frame, MessageAssembler

    assembler = MessageAssembler(max_message_bytes=1000)
    chunk = Frame(MsgType.HEADS, 1, b"x" * 600, CODEC_BINARY, flags=0)
    assert assembler.add(chunk) is None
    with pytest.raises(FrameError, match="cap"):
        assembler.add(chunk)


def test_partial_message_count_capped():
    from repro.net.frame import Frame, MessageAssembler

    assembler = MessageAssembler(max_partial_messages=2)
    assembler.add(Frame(MsgType.HEADS, 1, b"a", CODEC_BINARY, flags=0))
    assembler.add(Frame(MsgType.HEADS, 2, b"b", CODEC_BINARY, flags=0))
    with pytest.raises(FrameError, match="partial"):
        assembler.add(Frame(MsgType.HEADS, 3, b"c", CODEC_BINARY, flags=0))
    # completing one message frees its slot
    assembler.add(Frame(MsgType.HEADS, 1, b"", CODEC_BINARY, flags=FLAG_END))
    assert assembler.add(Frame(MsgType.HEADS, 3, b"c", CODEC_BINARY, flags=0)) is None
