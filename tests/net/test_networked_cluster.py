"""Networked-shard integration: multiprocess clusters match in-process ones.

The acceptance contract of ``repro.net``: a 2-process networked cluster
returns **bit-identical** consolidated payloads and prediction outputs
vs. the in-process ``PoolShard`` path, errors keep their type (and gain
the shard id) across the wire, and shutdown leaks no worker processes.
"""

from __future__ import annotations

import os
import socket

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterGateway, PoolShard
from repro.core import deserialize_task_model
from repro.net import (
    MsgType,
    NetworkedCluster,
    PROTOCOL_VERSION,
    RemoteOperationUnsupported,
    RemoteShardClient,
    ShardServer,
)
from repro.net.frame import FrameDecoder, encode_frame, json_payload, parse_json
from repro.serving import GatewayConfig

CONFIG = ClusterConfig(num_shards=2, workers_per_shard=2)


def _cross_shard_query(cluster) -> tuple:
    names = sorted(cluster.available_tasks())
    first = names[0]
    partner = next(
        n for n in names[1:] if cluster.shards_of(n)[0] != cluster.shards_of(first)[0]
    )
    return (first, partner)


@pytest.fixture(scope="module")
def networked(net_pool):
    pool, _data = net_pool
    with NetworkedCluster(pool, CONFIG) as deployment:
        yield deployment


@pytest.fixture(scope="module")
def in_process(net_pool):
    pool, _data = net_pool
    with ClusterGateway(pool, CONFIG) as cluster:
        yield cluster


# ----------------------------------------------------------------------
# Bit-identical serving across the process boundary
# ----------------------------------------------------------------------
def test_worker_processes_are_real(networked):
    pids = {shard.worker_pid for shard in networked.gateway.shards}
    assert len(pids) == len(networked.gateway.shards)
    assert os.getpid() not in pids


def test_cross_shard_payload_and_logits_bit_identical(networked, in_process, net_pool):
    pool, data = net_pool
    query = _cross_shard_query(in_process)
    remote = networked.gateway.serve(query)
    local = in_process.serve(query)
    assert networked.gateway.metrics.counter("cross_shard") >= 1
    assert remote.payload == local.payload
    x = data.test.images[:16]
    rebuilt = deserialize_task_model(remote.payload)
    reference = deserialize_task_model(local.payload)
    assert np.array_equal(rebuilt.logits(x), reference.logits(x))


def test_single_shard_payload_bit_identical(networked, in_process):
    task = sorted(in_process.available_tasks())[0]
    assert networked.gateway.serve((task,)).payload == in_process.serve((task,)).payload


def test_get_model_logits_bit_identical(networked, in_process, net_pool):
    _pool, data = net_pool
    query = _cross_shard_query(in_process)
    x = data.test.images[:16]
    remote_model = networked.gateway.get_model(query)
    local_model = in_process.get_model(query)
    assert np.array_equal(remote_model.logits(x), local_model.logits(x))
    # single-shard plans assemble at the front end when the shard is remote
    task = sorted(in_process.available_tasks())[0]
    assert np.array_equal(
        networked.gateway.get_model((task,)).logits(x),
        in_process.get_model((task,)).logits(x),
    )


def test_predict_bit_identical(networked, in_process, net_pool):
    _pool, data = net_pool
    x = data.test.images[:16]
    query = _cross_shard_query(in_process)
    for tasks in (query, query[:1]):
        remote = networked.gateway.predict(x, tasks)
        local = in_process.predict(x, tasks)
        assert np.array_equal(remote.class_ids, local.class_ids)


def test_submit_predict_through_worker(networked, in_process, net_pool):
    _pool, data = net_pool
    x = data.test.images[:8]
    task = sorted(in_process.available_tasks())[0]
    response = networked.gateway.submit_predict(x, (task,)).result(timeout=60)
    assert np.array_equal(
        response.class_ids, in_process.predict(x, (task,)).class_ids
    )


def test_fetch_heads_bytes_identical(networked, in_process):
    """The remote fetch ships the exact bytes the in-process boundary does."""
    shard_id = 0
    names = in_process.shards[shard_id].task_names()
    local_bytes = in_process.shards[shard_id].fetch_heads(names)
    remote_bytes = networked.gateway.shards[shard_id].fetch_heads(names)
    assert remote_bytes == local_bytes


def test_stats_round_trip(networked):
    client = networked.gateway.shards[0]
    stats = client.cache_stats()
    assert {"model", "payload", "trunk", "result"} <= set(stats)
    assert stats["payload"].budget_bytes > 0
    rendered = networked.gateway.render_stats()
    assert "shard[0]" in rendered
    assert "net_roundtrip" in rendered


# ----------------------------------------------------------------------
# Errors across the wire
# ----------------------------------------------------------------------
def test_remote_keyerror_keeps_type_and_names_shard(networked):
    client = networked.gateway.shards[1]
    with pytest.raises(KeyError) as excinfo:
        client.fetch_heads(("no-such-task",))
    assert "[shard 1]" in str(excinfo.value)
    assert "no-such-task" in str(excinfo.value)


def test_unknown_task_raises_keyerror_at_front_end(networked):
    with pytest.raises(KeyError, match="no expert extracted"):
        networked.gateway.serve(("no-such-task",))


def test_in_process_mutation_signatures_point_at_batch_frames(networked):
    """Live-object signatures still cannot cross a socket; the typed
    error names the serialized batch frame to use instead."""
    client = networked.gateway.shards[0]
    with pytest.raises(RemoteOperationUnsupported, match="drop_heads"):
        client.drop_expert("task0")
    with pytest.raises(RemoteOperationUnsupported, match="install_heads"):
        client.install_expert("task0", object(), 1)
    with pytest.raises(RemoteOperationUnsupported, match="push_library"):
        client.refresh_library(object(), None, 1)


def test_networked_rebalance_moves_experts_over_the_wire(networked, in_process):
    """rebalance() now works against mutation-capable workers: pin a task
    to the other shard and the move lands bit-identically."""
    gateway = networked.gateway
    assert all(s.supports_mutations for s in gateway.shards)
    task = sorted(gateway.available_tasks())[0]
    reference = in_process.serve((task,)).payload
    (old_shard,) = gateway.shards_of(task)
    target = 1 - old_shard
    gateway.router.pin(task, target)
    report = gateway.rebalance()
    assert (task, (old_shard,), (target,)) in report.moved
    assert report.epoch == gateway.epoch > 0
    assert gateway.shards_of(task) == (target,)
    assert gateway.serve((task,)).payload == reference
    # the fleet's respawn spec follows the committed placement
    slots = {h.shard_id: h.task_names for h in networked.fleet.workers}
    assert task in slots[target] and task not in slots[old_shard]
    gateway.router.unpin(task)


def test_rebalance_requires_the_mutations_feature(networked):
    """A worker that did not negotiate 'mutations' (legacy server or no
    auth token) makes rebalance fail with the typed capability error."""
    gateway = networked.gateway
    client = gateway.shards[0]
    features = client.info["features"]
    client.info["features"] = []
    try:
        with pytest.raises(RemoteOperationUnsupported, match="mutations"):
            gateway.rebalance()
    finally:
        client.info["features"] = features


# ----------------------------------------------------------------------
# Async transport
# ----------------------------------------------------------------------
def test_async_transport_bit_identical(net_pool, in_process):
    pool, _data = net_pool
    query = _cross_shard_query(in_process)
    task = sorted(in_process.available_tasks())[0]
    reference_cross = in_process.serve(query).payload
    reference_single = in_process.serve((task,)).payload
    with NetworkedCluster(pool, CONFIG, async_transport=True) as deployment:
        gateway = deployment.gateway
        assert gateway.async_transport is not None
        futures = [gateway.submit(query) for _ in range(3)]
        futures += [gateway.submit((task,)) for _ in range(3)]
        results = [f.result(timeout=120) for f in futures]
        assert all(r.payload == reference_cross for r in results[:3])
        assert all(r.payload == reference_single for r in results[3:])
        with pytest.raises(KeyError):
            gateway.submit(("no-such-task",)).result(timeout=60)
    assert deployment.fleet.leaked_processes() == []


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_clean_shutdown_no_leaked_processes(net_pool):
    pool, _data = net_pool
    deployment = NetworkedCluster(pool, CONFIG)
    task = sorted(deployment.gateway.available_tasks())[0]
    deployment.gateway.serve((task,))
    deployment.close()
    assert deployment.fleet.leaked_processes() == []
    assert [h.process.exitcode for h in deployment.fleet.workers] == [0, 0]


def test_in_process_server_drain_rejects_new_requests(net_pool):
    """ShardServer (no fork): drain answers in-flight work, then refuses."""
    pool, _data = net_pool
    shard = PoolShard(0, pool, sorted(pool.expert_names())[:2], GatewayConfig(max_workers=2))
    server = ShardServer(shard, request_workers=2)
    address = server.start()
    try:
        client = RemoteShardClient(address)
        assert client.ping() >= 0.0
        client.close()
        RemoteShardClient.drain_address(address)
        assert server.wait_drained(timeout=5)
    finally:
        server.close()
        shard.close()


def test_protocol_mismatch_is_answered_with_typed_error(net_pool):
    pool, _data = net_pool
    shard = PoolShard(0, pool, sorted(pool.expert_names())[:1], GatewayConfig(max_workers=1))
    server = ShardServer(shard, request_workers=1)
    (host, port) = server.start()
    try:
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                encode_frame(
                    MsgType.HELLO, 1, json_payload({"protocol": PROTOCOL_VERSION + 9})
                )
            )
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(1 << 16)
                assert data, "server closed without answering the bad HELLO"
                frames = decoder.feed(data)
            error = parse_json(frames[0].payload)
            assert frames[0].msg_type == MsgType.ERROR
            assert error["type"] == "FrameError"
            assert "protocol mismatch" in error["message"]
            # ...and the server hangs up after answering
            assert sock.recv(1 << 16) == b""
    finally:
        server.close()
        shard.close()


def test_remote_mutation_pushes_into_running_workers(net_pool, in_process):
    """A pool mutation now propagates into running workers through the
    fenced INSTALL_HEADS frame: caches drop, the gateway keeps serving,
    and nothing is poisoned."""
    pool, _data = net_pool
    with NetworkedCluster(pool, CONFIG) as deployment:
        gateway = deployment.gateway
        query = _cross_shard_query(in_process)
        reference = gateway.serve(query).payload
        assert len(gateway.payload_cache) == 1
        task = query[0]
        placement_before = gateway.available_tasks()
        gateway._on_expert_update(task, pool.expert_version(task))
        assert len(gateway.payload_cache) == 0
        assert gateway.available_tasks() == placement_before
        assert gateway.metrics.counter("remote_updates_pushed") >= 1
        assert gateway.metrics.counter("remote_updates_unapplied") == 0
        # serving continues, bit-identically (the pool didn't change)
        assert gateway.serve(query).payload == reference


def test_remote_mutation_poisons_when_workers_lack_the_feature(net_pool, in_process):
    """Legacy fallback: when a worker did not negotiate 'mutations', the
    listener must NOT raise (an exception from inside the pool's listener
    loop would skip every listener registered after it); instead it drops
    the front-end composite caches, leaves the placement map untouched,
    and poisons the gateway so the next serving call fails loudly."""
    pool, _data = net_pool
    with NetworkedCluster(pool, CONFIG) as deployment:
        gateway = deployment.gateway
        query = _cross_shard_query(in_process)
        gateway.serve(query)
        assert len(gateway.payload_cache) == 1
        assert len(gateway.model_cache) == 1
        gateway.shards[0].info["features"] = []  # simulate a legacy worker
        task = query[0]
        placement_before = gateway.available_tasks()
        # the listener returns normally (later listeners still run)...
        gateway._on_expert_update(task, pool.expert_version(task) + 1)
        assert len(gateway.payload_cache) == 0
        assert len(gateway.model_cache) == 0
        assert gateway.available_tasks() == placement_before
        assert gateway.metrics.counter("remote_updates_unapplied") == 1
        # ...and every serving entry point refuses until a fleet restart
        with pytest.raises(RuntimeError, match="restart the worker fleet"):
            gateway.serve(query)
        with pytest.raises(RuntimeError, match="restart the worker fleet"):
            gateway.predict(np.zeros((1, 3, 6, 6), dtype=np.float32), (task,))
        with pytest.raises(RuntimeError, match="restart the worker fleet"):
            gateway.get_model(query)


def test_remote_library_bump_pushes_library_state(net_pool, in_process):
    """REFRESH_LIBRARY carries the trunk to running workers: tiers clear,
    the gateway keeps serving the same bytes (the trunk didn't change)."""
    pool, _data = net_pool
    from repro.core.pool import LIBRARY_TASK

    with NetworkedCluster(pool, CONFIG) as deployment:
        gateway = deployment.gateway
        query = _cross_shard_query(in_process)
        reference = gateway.serve(query).payload
        assert len(gateway.payload_cache) == 1
        gateway._on_expert_update(LIBRARY_TASK, pool.expert_version(LIBRARY_TASK))
        assert len(gateway.payload_cache) == 0
        assert len(gateway.remote_head_cache) == 0
        assert gateway.metrics.counter("remote_updates_pushed") >= 1
        assert gateway.serve(query).payload == reference
