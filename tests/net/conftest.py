"""Fixtures for the networked-shard tier: a small pool, built once.

The networked tests fork worker processes off the already-preprocessed
pool, so the pool itself can stay tiny — what matters is that it spans
at least two shards and serves bit-exactly, not its accuracy.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def net_pool():
    """(pool, data) with 4 primitive tasks — enough to span 2 shards."""
    from repro.serving.demo import build_demo_pool

    return build_demo_pool(
        num_tasks=4, train_per_class=12, test_per_class=8, epochs=2, seed=5
    )
