"""Continuous telemetry over a real 2-worker networked cluster.

The PR 7 acceptance path: a :class:`TelemetryPoller` pointed at a
:class:`NetworkedCluster` gateway must produce per-shard rate series
(each shard source answering through the STATS wire round trip) and pull
the workers' journal events — ``worker_start`` emitted at fork inside
the worker process — back into the front end's journal through the
``journal_since`` cursor in the STATS payload.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig
from repro.net import NetworkedCluster
from repro.obs import EventJournal, HealthScorer, TelemetryPoller, render_dashboard

CONFIG = ClusterConfig(num_shards=2, workers_per_shard=2)


class TestNetworkedTelemetry:
    def test_poller_collects_series_events_and_health(self, net_pool):
        pool, data = net_pool
        journal = EventJournal()
        journal.enable(service="frontend")
        with NetworkedCluster(pool, CONFIG) as deployment:
            gateway = deployment.gateway
            task = sorted(gateway.available_tasks())[0]
            poller = TelemetryPoller.for_gateway(gateway, journal=journal)
            assert sorted(poller.sources) == ["cluster", "shard0", "shard1"]

            poller.poll_once()  # baseline
            gateway.serve((task,))
            gateway.predict(data.test.images[:2], (task,))
            produced = poller.poll_once()

            # every source is up and the traffic moved the cluster series
            for label in poller.sources:
                assert poller.store.last(f"{label}.up") == 1.0
            assert produced["cluster"]["qps"] > 0
            assert poller.store.last("cluster.stage.total.p95") > 0

            # the workers' fork-time journal events crossed the STATS wire
            kinds = [e["kind"] for e in journal.events()]
            assert kinds.count("worker_start") == 2
            services = {e["service"] for e in journal.events()}
            assert services == {"shard0", "shard1"}

            # polling again must not re-ingest the same worker events
            poller.poll_once()
            assert [e["kind"] for e in journal.events()].count("worker_start") == 2

            # the scorer and dashboard run off the same store end to end
            scorer = HealthScorer(poller.store, journal)
            verdicts = scorer.score_all()
            assert verdicts["shard0"]["state"] == "healthy"
            frame = render_dashboard(poller.store, scorer, journal)
            assert "worker_start" in frame and "shard1" in frame

    def test_dead_worker_scores_unreachable(self, net_pool):
        pool, _data = net_pool
        journal = EventJournal()
        journal.enable()
        with NetworkedCluster(pool, CONFIG) as deployment:
            gateway = deployment.gateway
            poller = TelemetryPoller.for_gateway(gateway, journal=journal)
            poller.poll_once()
            # sabotage one shard's source: the poller must mark it down
            # and keep scoring the rest
            def boom():
                raise ConnectionResetError("worker gone")

            poller.sources["shard1"] = boom
            poller.poll_once()
            scorer = HealthScorer(poller.store, journal)
            verdicts = scorer.score_all()
            assert verdicts["shard1"]["state"] == "unreachable"
            assert verdicts["shard0"]["state"] == "healthy"
            assert any(e["kind"] == "poll_error" for e in journal.events())

    def test_remote_stats_payload_carries_schema2_extras(self, net_pool):
        pool, data = net_pool
        with NetworkedCluster(pool, CONFIG) as deployment:
            gateway = deployment.gateway
            task = sorted(gateway.available_tasks())[0]
            gateway.predict(data.test.images[:2], (task,))
            remote = next(s for s in gateway.shards if s.is_remote())
            stats = remote.stats()
            assert stats["schema"] == 2
            assert "journal" in stats  # worker journal rides the STATS frame
            assert any(e["kind"] == "worker_start" for e in stats["journal"])
            # the worker that served the prediction tracks its popularity
            merged = gateway.unified_snapshot()
            assert task in merged.get("popularity", {})
            assert merged["popularity"][task]["count"] >= 1
