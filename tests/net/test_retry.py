"""Unit tests for the fault-tolerance policy layer (``repro.net.retry``).

Pure state-machine and policy tests — no sockets, no processes.  The
circuit breaker runs against an injected fake clock so open/half-open
transitions are deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.net import (
    BreakerOpenError,
    CircuitBreaker,
    HedgePolicy,
    IDEMPOTENT_MSG_TYPES,
    LatencyTracker,
    MsgType,
    RetryPolicy,
    ShardDrainingError,
)
from repro.net.frame import FrameError
from repro.net.retry import DEFAULT_OP_TIMEOUTS, RETRYABLE_EXCEPTIONS


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_idempotent_msg_types_cover_reads_not_mutations():
    assert MsgType.FETCH_HEADS in IDEMPOTENT_MSG_TYPES
    assert MsgType.SERVE in IDEMPOTENT_MSG_TYPES
    assert MsgType.PREDICT in IDEMPOTENT_MSG_TYPES
    assert MsgType.STATS in IDEMPOTENT_MSG_TYPES
    assert MsgType.PING in IDEMPOTENT_MSG_TYPES
    assert MsgType.DRAIN not in IDEMPOTENT_MSG_TYPES
    assert MsgType.HELLO not in IDEMPOTENT_MSG_TYPES


def test_attempts_only_for_idempotent_ops():
    policy = RetryPolicy(max_attempts=4)
    assert policy.attempts_for(MsgType.SERVE) == 4
    assert policy.attempts_for(MsgType.FETCH_HEADS) == 4
    assert policy.attempts_for(MsgType.DRAIN) == 1
    assert policy.attempts_for(MsgType.HELLO) == 1


def test_per_op_timeouts_replace_the_single_socket_timeout():
    policy = RetryPolicy()
    assert policy.timeout_for(MsgType.PING) == DEFAULT_OP_TIMEOUTS[MsgType.PING]
    assert policy.timeout_for(MsgType.PING) < policy.timeout_for(MsgType.SERVE)
    # unknown types fall back to the default deadline
    assert policy.timeout_for(MsgType.HELLO) == policy.default_timeout


@pytest.mark.parametrize(
    "error", [ConnectionError("x"), TimeoutError("x"), OSError("x"), ShardDrainingError("x")]
)
def test_transport_errors_are_retryable_on_idempotent_ops(error):
    policy = RetryPolicy()
    assert policy.retryable(MsgType.SERVE, error)
    # ...but never on a non-idempotent op
    assert not policy.retryable(MsgType.DRAIN, error)


@pytest.mark.parametrize(
    "error", [KeyError("x"), ValueError("x"), RuntimeError("x"), FrameError("x")]
)
def test_application_and_framing_errors_are_never_retryable(error):
    policy = RetryPolicy()
    assert not policy.retryable(MsgType.SERVE, error)


def test_frame_error_excluded_despite_being_a_value_error():
    # FrameError subclasses ValueError, not OSError, so it was never in
    # RETRYABLE_EXCEPTIONS — but ShardDrainingError subclasses RuntimeError
    # and IS retryable; the policy must distinguish them
    assert issubclass(ShardDrainingError, RuntimeError)
    assert isinstance(ShardDrainingError("x"), RETRYABLE_EXCEPTIONS)
    assert not isinstance(FrameError("x"), RETRYABLE_EXCEPTIONS)


def test_backoff_is_bounded_exponential_with_full_jitter():
    policy = RetryPolicy(base_delay=0.1, max_delay=0.5)
    rng = random.Random(7)
    for attempt, ceiling in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.5), (10, 0.5)):
        draws = [policy.backoff(attempt, rng) for _ in range(50)]
        assert all(0.0 <= d <= ceiling for d in draws)
    # full jitter: draws actually vary (not a fixed schedule)
    assert len({round(policy.backoff(3, rng), 9) for _ in range(20)}) > 1
    assert policy.backoff(0) == 0.0


def test_breaker_open_error_is_a_connection_error():
    assert issubclass(BreakerOpenError, ConnectionError)


# ----------------------------------------------------------------------
# CircuitBreaker (fake clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_breaker_opens_after_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0, clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # not yet
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()


def test_success_resets_the_consecutive_count():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


def test_half_open_admits_exactly_one_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    clock.now = 5.0  # cooldown elapsed
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # second caller waits for the probe outcome


def test_half_open_probe_success_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
    breaker.record_failure()
    clock.now = 1.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_half_open_probe_failure_reopens_for_another_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
    breaker.record_failure()
    clock.now = 1.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    clock.now = 2.0  # second cooldown elapsed, probe admitted again
    assert breaker.allow()


def test_reset_force_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, clock=clock)
    breaker.record_failure()
    breaker.reset()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_rejects_bad_threshold():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)


# ----------------------------------------------------------------------
# HedgePolicy + LatencyTracker
# ----------------------------------------------------------------------
def test_hedge_delay_uses_floor_until_enough_samples():
    tracker = LatencyTracker()
    policy = HedgePolicy(min_delay=0.02, min_samples=8)
    assert tracker.hedge_delay(policy) == 0.02
    for _ in range(7):
        tracker.observe(0.5)
    assert tracker.hedge_delay(policy) == 0.02  # still below min_samples


def test_hedge_delay_tracks_quantile_clamped():
    tracker = LatencyTracker()
    for value in [0.01] * 90 + [0.2] * 10:
        tracker.observe(value)
    policy = HedgePolicy(quantile=0.5, min_delay=0.005, max_delay=1.0)
    assert tracker.hedge_delay(policy) == pytest.approx(0.01)
    high = HedgePolicy(quantile=0.99, min_delay=0.005, max_delay=0.05)
    assert tracker.hedge_delay(high) == 0.05  # clamped to max_delay


def test_latency_tracker_ring_is_bounded():
    tracker = LatencyTracker(capacity=16)
    for i in range(100):
        tracker.observe(float(i))
    assert len(tracker) == 16
    assert tracker.quantile(1.0) is not None


def test_quantile_of_empty_tracker_is_none():
    assert LatencyTracker().quantile(0.95) is None


# ----------------------------------------------------------------------
# Mutation frames: dedup-retryable, never hedged, fenced
# ----------------------------------------------------------------------
def test_mutation_msg_types_are_not_idempotent():
    """Mutations must never qualify for hedging/failover (IDEMPOTENT set);
    their retry budget comes from mutation-id dedup instead."""
    from repro.net import MUTATION_MSG_TYPES

    assert MUTATION_MSG_TYPES == frozenset(
        {MsgType.INSTALL_HEADS, MsgType.DROP_HEADS, MsgType.REFRESH_LIBRARY}
    )
    assert not (MUTATION_MSG_TYPES & IDEMPOTENT_MSG_TYPES)


def test_mutations_get_full_retry_attempts_via_dedup():
    policy = RetryPolicy(max_attempts=5)
    assert policy.attempts_for(MsgType.INSTALL_HEADS) == 5
    assert policy.attempts_for(MsgType.DROP_HEADS) == 5
    assert policy.attempts_for(MsgType.REFRESH_LIBRARY) == 5
    # non-idempotent, non-mutation control frames still get exactly one
    assert policy.attempts_for(MsgType.DRAIN) == 1


@pytest.mark.parametrize(
    "error",
    [ConnectionError("x"), TimeoutError("x"), OSError("x"), ShardDrainingError("x")],
)
def test_transport_errors_are_retryable_on_mutations(error):
    policy = RetryPolicy()
    assert policy.retryable(MsgType.INSTALL_HEADS, error)
    assert policy.retryable(MsgType.DROP_HEADS, error)


def test_stale_epoch_is_a_fencing_rejection_never_retryable():
    from repro.net import MUTATION_MSG_TYPES, StaleEpochError

    policy = RetryPolicy()
    assert issubclass(StaleEpochError, RuntimeError)
    for msg_type in MUTATION_MSG_TYPES:
        assert not policy.retryable(msg_type, StaleEpochError("fenced out"))


def test_permission_error_not_retryable_despite_oserror_lineage():
    # PermissionError subclasses OSError — which IS in RETRYABLE_EXCEPTIONS —
    # but a read-only rejection can never succeed by re-sending the frame
    policy = RetryPolicy()
    assert isinstance(PermissionError("read-only"), RETRYABLE_EXCEPTIONS)
    assert not policy.retryable(MsgType.INSTALL_HEADS, PermissionError("x"))
    assert not policy.retryable(MsgType.SERVE, PermissionError("x"))


def test_mutation_op_timeouts_are_tabled():
    policy = RetryPolicy()
    for msg_type in (MsgType.INSTALL_HEADS, MsgType.DROP_HEADS, MsgType.REFRESH_LIBRARY):
        assert policy.timeout_for(msg_type) == DEFAULT_OP_TIMEOUTS[msg_type]
    # a library push ships the whole trunk: it gets the roomiest deadline
    assert (
        DEFAULT_OP_TIMEOUTS[MsgType.REFRESH_LIBRARY]
        >= DEFAULT_OP_TIMEOUTS[MsgType.INSTALL_HEADS]
        > DEFAULT_OP_TIMEOUTS[MsgType.DROP_HEADS]
    )
