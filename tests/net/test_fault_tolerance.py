"""Fault tolerance: replica failover, hedged reads, chaos kills, drain.

The robustness contract of ``repro.net``: with ``replicas_per_shard > 1``
a SIGKILLed worker is invisible to clients — queries across the kill
window complete with **bit-identical** payloads, the supervisor journals
``worker_death``/``worker_respawn`` and refills the slot, hedged reads
absorb a slow replica's tail latency, and a draining replica sheds new
requests onto its sibling while in-flight work completes.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.cluster import ClusterConfig, ClusterGateway, PoolShard
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.router import ShardRouter
from repro.net import (
    BreakerOpenError,
    ChaosMonkey,
    HedgePolicy,
    NetworkedCluster,
    RemoteShardClient,
    ShardDrainingError,
    ShardServer,
)
from repro.obs import JOURNAL
from repro.serving import GatewayConfig

#: Hedging off + no delays: tests that target a specific replica must not
#: have a hedge race them to the sibling.
NO_HEDGE = HedgePolicy(enabled=False)


class SlowShardServer(ShardServer):
    """A replica with injected service latency (tail-latency stand-in)."""

    def __init__(self, *args, delay: float = 0.15, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.delay = delay

    def _run_request(self, *args, **kwargs) -> None:
        time.sleep(self.delay)
        super()._run_request(*args, **kwargs)


@pytest.fixture()
def shard_setup(net_pool):
    """One PoolShard plus a factory that starts replica servers over it."""
    pool, _data = net_pool
    names = sorted(pool.expert_names())
    shard = PoolShard(0, pool, names, GatewayConfig(max_workers=2))
    servers = []

    def start(server_cls=ShardServer, replica_id: int = 0, **kwargs):
        server = server_cls(shard, replica_id=replica_id, **kwargs)
        server.start()
        servers.append(server)
        return server

    yield shard, names, start
    for server in servers:
        server.close()
    shard.close()


# ----------------------------------------------------------------------
# Replica identity + routing surface
# ----------------------------------------------------------------------
def test_hello_carries_replica_id(shard_setup):
    _shard, _names, start = shard_setup
    server = start(replica_id=3)
    with RemoteShardClient(server.address) as client:
        assert client.info["replica"] == 3
        assert client.replica_count == 1


def test_router_replica_sets():
    router = ShardRouter(2, replicas_per_shard=3)
    assert router.replica_set(0) == (0, 1, 2)
    assert router.replica_set(1) == (0, 1, 2)
    with pytest.raises(ValueError):
        router.replica_set(2)
    with pytest.raises(ValueError):
        ShardRouter(2, replicas_per_shard=0)
    with pytest.raises(ValueError):
        ClusterConfig(num_shards=2, replicas_per_shard=0)


# ----------------------------------------------------------------------
# Retry + failover (sync client)
# ----------------------------------------------------------------------
def test_failover_to_sibling_when_primary_dies(shard_setup):
    shard, names, start = shard_setup
    primary = start(replica_id=0)
    sibling = start(replica_id=1)
    metrics = ClusterMetrics()
    with RemoteShardClient(
        [primary.address, sibling.address], metrics=metrics, hedge=NO_HEDGE
    ) as client:
        expected = shard.fetch_heads((names[0],), "raw+zlib")
        assert client.fetch_heads((names[0],), "raw+zlib") == expected
        primary.close()  # hard kill: dialing it now gets connection refused
        assert client.fetch_heads((names[0],), "raw+zlib") == expected
        assert metrics.counter("net_retries") >= 1


def test_sync_pool_evicts_corpse_channels(shard_setup):
    shard, names, start = shard_setup
    server = start()
    metrics = ClusterMetrics()
    with RemoteShardClient(server.address, metrics=metrics) as client:
        expected = shard.fetch_heads((names[0],), "raw+zlib")
        assert client.fetch_heads((names[0],), "raw+zlib") == expected
        # the worker side tears down every established connection (as a
        # SIGKILLed process would); the listener stays up
        with server._conn_lock:
            conns = list(server._connections)
        for conn in conns:
            conn.shutdown(2)
        time.sleep(0.05)  # let the FIN arrive so the peek sees EOF
        # the pooled channel is a corpse: the MSG_PEEK probe must evict it
        # and dial fresh — no error, no retry spent
        assert client.fetch_heads((names[0],), "raw+zlib") == expected
        assert metrics.counter("net_retries") == 0


def test_all_breakers_open_raises_typed_error(shard_setup):
    _shard, _names, start = shard_setup
    server = start()
    with RemoteShardClient(server.address) as client:
        for endpoint in client._replicas:
            for _ in range(endpoint.breaker.failure_threshold):
                endpoint.breaker.record_failure()
        assert client.breaker_states() == {0: "open"}
        with pytest.raises(BreakerOpenError):
            client.ping()


# ----------------------------------------------------------------------
# Hedged reads
# ----------------------------------------------------------------------
def test_hedged_read_beats_slow_primary(shard_setup):
    shard, names, start = shard_setup
    slow = start(SlowShardServer, replica_id=0, delay=0.15)
    fast = start(replica_id=1)
    metrics = ClusterMetrics()
    hedge = HedgePolicy(min_delay=0.02, max_delay=0.05)
    with RemoteShardClient(
        [slow.address, fast.address], metrics=metrics, hedge=hedge
    ) as client:
        expected = shard.fetch_heads((names[0],), "raw+zlib")
        elapsed = []
        for _ in range(3):
            t0 = time.perf_counter()
            assert client.fetch_heads((names[0],), "raw+zlib") == expected
            elapsed.append(time.perf_counter() - t0)
            time.sleep(0.2)  # let the losing slow attempt drain
        # every read finished well under the slow replica's 150 ms floor:
        # the hedge fired and the sibling's answer won
        assert min(elapsed) < 0.12
        assert metrics.counter("hedge_fired") >= 1
        assert metrics.counter("hedge_won") >= 1


# ----------------------------------------------------------------------
# Drain: in-flight completes, new requests fail over
# ----------------------------------------------------------------------
def test_drain_waits_for_inflight_and_sheds_new_requests(shard_setup):
    shard, names, start = shard_setup
    primary = start(SlowShardServer, replica_id=0, delay=0.3)
    sibling = start(replica_id=1)
    metrics = ClusterMetrics()
    with RemoteShardClient(
        [primary.address, sibling.address], metrics=metrics, hedge=NO_HEDGE
    ) as client:
        expected = shard.fetch_heads((names[0],), "raw+zlib")
        inflight_result = []

        def inflight() -> None:
            inflight_result.append(client.fetch_heads((names[0],), "raw+zlib"))

        worker = threading.Thread(target=inflight)
        worker.start()
        time.sleep(0.1)  # request is in flight on the slow primary
        primary.drain()  # returns only after in-flight work completed
        worker.join(timeout=10.0)
        assert inflight_result == [expected]
        # new requests: the draining primary answers with the typed
        # rejection, the retry layer fails them over to the sibling
        assert client.fetch_heads((names[0],), "raw+zlib") == expected
        assert metrics.counter("net_retries") >= 1


def test_draining_single_replica_surfaces_typed_error(shard_setup):
    _shard, names, start = shard_setup
    server = start()
    with RemoteShardClient(server.address) as client:
        client.ping()  # establish the pool before the drain
        server.drain()
        with pytest.raises(ShardDrainingError):
            client.fetch_heads((names[0],), "raw+zlib")


# ----------------------------------------------------------------------
# Chaos: SIGKILL under load, bit-identical results, journaled respawn
# ----------------------------------------------------------------------
CHAOS_CONFIG = ClusterConfig(
    num_shards=2,
    workers_per_shard=2,
    replicas_per_shard=2,
    # front-end caches off so queries keep crossing the wire through the
    # kill window instead of being absorbed by the composite cache
    composite_model_cache_bytes=0,
    composite_payload_cache_bytes=0,
    remote_head_cache_bytes=0,
    result_cache_bytes=0,
)


def _queries(cluster):
    names = sorted(cluster.available_tasks())
    first = names[0]
    partner = next(
        n for n in names[1:] if cluster.shards_of(n)[0] != cluster.shards_of(first)[0]
    )
    return [(n,) for n in names] + [(first, partner)]


def test_chaos_kill_is_invisible_to_clients(net_pool):
    pool, _data = net_pool
    with ClusterGateway(
        pool, ClusterConfig(num_shards=2, workers_per_shard=2)
    ) as local:
        queries = _queries(local)
        expected = {q: local.serve(q).payload for q in queries}
    JOURNAL.reset()
    JOURNAL.enable(service="test")
    try:
        with NetworkedCluster(pool, CHAOS_CONFIG) as deployment:
            gateway = deployment.gateway
            # 2 shards x 2 replicas = 4 worker processes, distinct pids
            assert len(deployment.fleet.workers) == 4
            assert len({h.process.pid for h in deployment.fleet.workers}) == 4
            assert {
                (h.shard_id, h.replica_id) for h in deployment.fleet.workers
            } == {(0, 0), (0, 1), (1, 0), (1, 1)}

            monkey = ChaosMonkey(deployment.fleet, random.Random(3))
            stop = threading.Event()
            errors: list = []
            results: list = []

            def drive() -> None:
                i = 0
                while not stop.is_set():
                    query = queries[i % len(queries)]
                    try:
                        results.append((query, gateway.serve(query).payload))
                    except Exception as exc:  # noqa: BLE001 - the assertion
                        errors.append(exc)
                    i += 1
                    # think time: keep traffic flowing across the kill window
                    # without saturating the box — on a small runner a
                    # closed loop would starve the respawned worker of the
                    # CPU it needs to finish starting up
                    time.sleep(0.02)

            threads = [threading.Thread(target=drive) for _ in range(2)]
            for thread in threads:
                thread.start()
            try:
                time.sleep(0.3)
                handle = monkey.kill_one()
                assert handle is not None
                assert monkey.wait_respawned(handle, timeout=60.0)
                time.sleep(0.3)  # keep load on the refilled fleet
            finally:
                # stop the load even when an assertion above fails — live
                # drive threads would otherwise outlast the test
                stop.set()
                for thread in threads:
                    thread.join(timeout=60.0)

            assert errors == []
            assert len(results) > len(queries)
            for query, payload in results:
                assert payload == expected[query], query

            # the killed slot holds a fresh, live process
            killed_shard, killed_replica, killed_pid = monkey.kills[0]
            slot = next(
                h
                for h in deployment.fleet.workers
                if h.shard_id == killed_shard and h.replica_id == killed_replica
            )
            assert slot.process.pid != killed_pid
            assert slot.process.is_alive()

            kinds = [e["kind"] for e in JOURNAL.events()]
            assert "worker_death" in kinds
            assert "worker_respawn" in kinds

            # breaker states ride in the unified snapshot, per shard/replica
            snapshot = gateway.unified_snapshot()
            assert set(snapshot["breakers"]) == {"0", "1"}
            for states in snapshot["breakers"].values():
                assert set(states) == {"0", "1"}
        assert deployment.fleet.leaked_processes() == []
    finally:
        JOURNAL.reset()


def test_chaos_kill_with_async_transport(net_pool):
    pool, _data = net_pool
    with ClusterGateway(
        pool, ClusterConfig(num_shards=2, workers_per_shard=2)
    ) as local:
        queries = _queries(local)
        expected = {q: local.serve(q).payload for q in queries}
    with NetworkedCluster(pool, CHAOS_CONFIG, async_transport=True) as deployment:
        gateway = deployment.gateway
        monkey = ChaosMonkey(deployment.fleet, random.Random(11))
        for query in queries:
            assert gateway.submit(query).result().payload == expected[query]
        handle = monkey.kill_one()
        assert handle is not None
        assert monkey.wait_respawned(handle, timeout=60.0)
        for _round in range(3):
            futures = [gateway.submit(query) for query in queries]
            for query, future in zip(queries, futures):
                assert future.result().payload == expected[query]
    assert deployment.fleet.leaked_processes() == []
