"""Trace context over the wire: HELLO negotiation, cross-process stitching.

The tentpole acceptance check lives here: one traced ``predict`` through
a real 2-worker :class:`NetworkedCluster` must yield **one** trace whose
span tree — reconstructed purely from the JSONL log — covers gateway →
wire → remote shard → fused prediction stages, with the remote spans
carrying the worker's pid and per-shard service name.  Interop is the
other half: a peer that never heard of the ``"trace"`` feature (old
client, plain HELLO) negotiates an empty feature set and serves exactly
as before, with no trace keys anywhere in its responses.
"""

from __future__ import annotations

import os
import socket

import pytest

from repro.cluster import ClusterConfig, PoolShard
from repro.net import (
    FEATURE_TRACE,
    MsgType,
    NetworkedCluster,
    PROTOCOL_VERSION,
    RemoteShardClient,
    ShardServer,
    SUPPORTED_FEATURES,
    negotiate_features,
)
from repro.net.frame import (
    FrameDecoder,
    MessageAssembler,
    encode_message,
    json_payload,
    parse_json,
    unpack_body,
)
from repro.obs import TRACER, JsonlTraceWriter, build_trace_tree, load_jsonl_spans
from repro.serving import SNAPSHOT_SCHEMA, GatewayConfig

CONFIG = ClusterConfig(num_shards=2, workers_per_shard=2)


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.reset()
    yield
    TRACER.reset()


# ----------------------------------------------------------------------
# Feature negotiation
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_negotiate_features_intersects_and_orders(self):
        assert negotiate_features(["trace"]) == (FEATURE_TRACE,)
        assert negotiate_features(["trace", "future-thing"]) == (FEATURE_TRACE,)
        assert negotiate_features(["future-thing"]) == ()
        assert negotiate_features(None) == ()
        assert negotiate_features("trace") == ()  # non-list is defensive no
        assert FEATURE_TRACE in SUPPORTED_FEATURES

    def test_modern_client_negotiates_trace(self, net_pool):
        pool, _data = net_pool
        shard = PoolShard(
            0, pool, sorted(pool.expert_names())[:1], GatewayConfig(max_workers=1)
        )
        server = ShardServer(shard, request_workers=1)
        address = server.start()
        try:
            client = RemoteShardClient(address)
            try:
                assert FEATURE_TRACE in client.info["features"]
                # negotiated features survive a STATS info rebuild
                client.stats()
                assert FEATURE_TRACE in client.info["features"]
            finally:
                client.close()
        finally:
            server.close()
            shard.close()

    def test_featureless_peer_interops_without_trace_keys(self, net_pool):
        """An old peer's HELLO has no "features" key; serving still works."""
        pool, _data = net_pool
        task = sorted(pool.expert_names())[0]
        shard = PoolShard(0, pool, [task], GatewayConfig(max_workers=1))
        server = ShardServer(shard, request_workers=1)
        host, port = server.start()
        try:
            with socket.create_connection((host, port), timeout=10) as sock:
                decoder = FrameDecoder()

                def round_trip(request_id, msg_type, payload):
                    for chunk in encode_message(msg_type, request_id, payload):
                        sock.sendall(chunk)
                    assembler = MessageAssembler(max_partial_messages=1)
                    while True:
                        data = sock.recv(1 << 16)
                        assert data, "server hung up mid-response"
                        for frame in decoder.feed(data):
                            message = assembler.add(frame)
                            if message is not None:
                                return message

                msg_type, _codec, _rid, body = round_trip(
                    1, MsgType.HELLO, json_payload({"protocol": PROTOCOL_VERSION})
                )
                assert msg_type == MsgType.HELLO_OK
                assert parse_json(body)["features"] == []

                msg_type, _codec, _rid, body = round_trip(
                    2,
                    MsgType.SERVE,
                    json_payload({"tasks": [task], "transport": "float32"}),
                )
                assert msg_type == MsgType.SERVED
                meta, blob = unpack_body(body)
                assert "trace_spans" not in meta
                assert len(blob) > 0
        finally:
            server.close()
            shard.close()


# ----------------------------------------------------------------------
# Cross-process span-tree reconstruction (the tentpole acceptance check)
# ----------------------------------------------------------------------
class TestNetworkedTrace:
    def test_traced_predict_reconstructs_across_two_processes(
        self, net_pool, tmp_path
    ):
        pool, data = net_pool
        path = str(tmp_path / "trace.jsonl")
        with NetworkedCluster(pool, CONFIG) as deployment:
            gateway = deployment.gateway
            task = sorted(gateway.available_tasks())[0]
            writer = JsonlTraceWriter(path)
            TRACER.enable(writer=writer, service="frontend")
            response = gateway.predict(data.test.images[:4], (task,))
            TRACER.disable()
            writer.close()
            assert response.batch_size == 4

        trees = build_trace_tree(load_jsonl_spans(path))
        assert len(trees) == 1, "one request must yield exactly one trace"
        [spans] = trees.values()
        by_name = {s["name"]: s for s in spans}

        # gateway -> wire -> remote shard, linked by parent ids
        root = by_name["cluster.predict"]
        assert root["depth"] == 0 and root["parent_id"] is None
        assert root["service"] == "frontend"
        wire = by_name["net.predict"]
        assert wire["parent_id"] == root["span_id"]
        remote = by_name["shard.predict"]
        assert remote["parent_id"] == wire["span_id"]
        assert remote["service"].startswith("shard")
        assert remote["tags"]["pid"] != os.getpid()

        # ...down to the fused prediction stages inside the worker
        inner = by_name["gateway.predict"]
        assert inner["parent_id"] == remote["span_id"]
        assert inner["service"] == remote["service"]
        stage_names = {
            s["name"] for s in spans if s["parent_id"] == inner["span_id"]
        }
        assert "predict_heads" in stage_names
        assert "predict_argmax" in stage_names
        assert stage_names & {"predict_trunk_fused", "predict_trunk"}

    def test_untraced_traffic_records_nothing(self, net_pool):
        pool, data = net_pool
        with NetworkedCluster(pool, CONFIG) as deployment:
            gateway = deployment.gateway
            task = sorted(gateway.available_tasks())[0]
            gateway.predict(data.test.images[:2], (task,))
            gateway.serve((task,))
        assert len(TRACER.collector) == 0

    def test_unified_snapshot_merges_worker_metrics(self, net_pool):
        pool, _data = net_pool
        with NetworkedCluster(pool, CONFIG) as deployment:
            gateway = deployment.gateway
            task = sorted(gateway.available_tasks())[0]
            gateway.serve((task,))
            snap = gateway.unified_snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["kind"] == "cluster"
        # the worker's serve stages arrive through the STATS frame merge
        assert "serialize" in snap["stages"]
        assert "total" in snap["stages"]
        assert snap["counters"]["requests"] >= 1
