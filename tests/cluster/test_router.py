"""ShardRouter: deterministic, balanced, overridable task→shard routing."""

import pytest

from repro.cluster import ShardRouter, plan_groups

NAMES_1K = [f"task-{i:04d}" for i in range(1000)]


class TestDeterminism:
    def test_same_config_same_routing(self):
        a = ShardRouter(num_shards=5, seed=3)
        b = ShardRouter(num_shards=5, seed=3)
        assert [a.shard_for(n) for n in NAMES_1K] == [b.shard_for(n) for n in NAMES_1K]

    def test_seed_changes_routing(self):
        a = ShardRouter(num_shards=5, seed=0)
        b = ShardRouter(num_shards=5, seed=1)
        assert [a.shard_for(n) for n in NAMES_1K] != [b.shard_for(n) for n in NAMES_1K]

    def test_ranked_shards_is_permutation(self):
        router = ShardRouter(num_shards=7)
        for name in NAMES_1K[:50]:
            assert sorted(router.ranked_shards(name)) == list(range(7))


class TestBalance:
    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_primary_spread_chi_square_bound(self, num_shards):
        """Placement over 1k names stays within a chi-square-ish bound.

        Under uniform placement the statistic is chi-square with
        ``num_shards - 1`` degrees of freedom (expected value = df); 30 is
        far beyond the p=0.001 tail for df<=7, so failures mean real skew,
        not noise.
        """
        router = ShardRouter(num_shards=num_shards)
        counts = [0] * num_shards
        for name in NAMES_1K:
            counts[router.shard_for(name)] += 1
        expected = len(NAMES_1K) / num_shards
        chi2 = sum((c - expected) ** 2 / expected for c in counts)
        assert chi2 < 30.0, f"counts {counts} too skewed (chi2={chi2:.1f})"

    def test_minimal_disruption_on_growth(self):
        """Growing 4 -> 5 shards moves roughly 1/5 of the tasks, not all."""
        small = ShardRouter(num_shards=4)
        grown = ShardRouter(num_shards=5)
        moved = sum(small.shard_for(n) != grown.shard_for(n) for n in NAMES_1K)
        assert moved / len(NAMES_1K) < 0.4  # rendezvous expectation: ~0.2


class TestOverridesAndReplication:
    def test_pin_forces_primary(self):
        router = ShardRouter(num_shards=4)
        name = next(n for n in NAMES_1K if router.shard_for(n) != 2)
        router.pin(name, 2)
        assert router.shard_for(name) == 2
        router.unpin(name)
        assert router.shard_for(name) != 2

    def test_pin_validates_shard(self):
        router = ShardRouter(num_shards=4)
        with pytest.raises(ValueError):
            router.pin("x", 4)

    def test_replication_returns_distinct_shards(self):
        router = ShardRouter(num_shards=4, replication=3)
        for name in NAMES_1K[:50]:
            shards = router.shards_for(name)
            assert len(shards) == 3 and len(set(shards)) == 3

    def test_hot_expert_replication_overrides_default(self):
        router = ShardRouter(num_shards=4)
        router.replicate("hot", 4)
        assert len(router.shards_for("hot")) == 4
        assert len(router.shards_for("cold")) == 1

    def test_replication_bounds_validated(self):
        with pytest.raises(ValueError):
            ShardRouter(num_shards=2, replication=3)
        router = ShardRouter(num_shards=2)
        with pytest.raises(ValueError):
            router.replicate("x", 3)


class TestPlanning:
    def test_plan_partitions_the_query(self):
        router = ShardRouter(num_shards=4)
        names = NAMES_1K[:10]
        plan = router.plan(names)
        flattened = sorted(n for group in plan.values() for n in group)
        assert flattened == sorted(names)
        for shard, group in plan.items():
            for name in group:
                assert shard in router.shards_for(name)

    def test_replicas_shrink_fanout(self):
        """A fully replicated hot task never adds a shard to the plan."""
        router = ShardRouter(num_shards=4)
        cold = next(n for n in NAMES_1K)
        hot = "hot-task"
        router.replicate(hot, 4)
        plan = router.plan([cold, hot])
        assert len(plan) == 1
        assert set(plan[router.shard_for(cold)]) == {cold, hot}

    def test_plan_groups_prefers_touched_shards(self):
        plan = plan_groups({"a": (0,), "b": (2, 0), "c": (1, 3)})
        assert plan[0] == ("a", "b")  # b joins a's shard instead of its primary
        assert plan[1] == ("c",)

    def test_assignment_covers_every_shard(self):
        router = ShardRouter(num_shards=4)
        assignment = router.assignment(NAMES_1K[:20])
        assert sorted(assignment) == [0, 1, 2, 3]
        placed = sorted(n for group in assignment.values() for n in group)
        assert placed == sorted(NAMES_1K[:20])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(num_shards=0)
