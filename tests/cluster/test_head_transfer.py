"""Head-level payloads: the cross-shard fetch boundary must be float-exact."""

import numpy as np
import pytest

from repro.core import (
    deserialize_expert_heads,
    serialize_expert_heads,
    serialize_task_model,
)


class TestHeadRoundtrip:
    @pytest.mark.parametrize("transport", ["float32", "raw+zlib"])
    def test_states_bit_exact(self, wide_pool, transport):
        pool, _ = wide_pool
        names = pool.expert_names()[:3]
        payload = serialize_expert_heads(pool, names, transport)
        remotes = deserialize_expert_heads(payload)
        assert set(remotes) == set(names)
        for name in names:
            original = pool.experts[name].state_dict()
            restored = remotes[name].head.state_dict()
            assert set(original) == set(restored)
            for key in original:
                assert np.array_equal(
                    np.asarray(original[key]), np.asarray(restored[key])
                ), (name, key)

    def test_versions_and_task_metadata_travel(self, wide_pool):
        pool, _ = wide_pool
        name = pool.expert_names()[0]
        remotes = deserialize_expert_heads(serialize_expert_heads(pool, [name]))
        remote = remotes[name]
        assert remote.version == pool.expert_version(name)
        assert remote.task == pool.hierarchy.task(name)

    def test_missing_expert_rejected(self, wide_pool):
        pool, _ = wide_pool
        with pytest.raises(KeyError, match="dragons"):
            serialize_expert_heads(pool, ["dragons"])

    def test_unknown_transport_rejected(self, wide_pool):
        pool, _ = wide_pool
        with pytest.raises(ValueError, match="transport"):
            serialize_expert_heads(pool, pool.expert_names()[:1], "float16")

    def test_task_model_payload_rejected(self, wide_pool):
        """A whole-model payload is not an expert-heads payload."""
        pool, _ = wide_pool
        network, composite = pool.consolidate(list(pool.expert_names()[:1]))
        payload = serialize_task_model(network, composite, pool.config)
        with pytest.raises(ValueError, match="expert-heads"):
            deserialize_expert_heads(payload)
