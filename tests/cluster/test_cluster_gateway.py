"""ClusterGateway: routing, cross-shard consolidation, rebalance, invalidation."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterGateway, ShardRouter
from repro.core import deserialize_task_model
from repro.distill import batched_forward


def _make(pool, **overrides):
    defaults = dict(num_shards=4, workers_per_shard=1)
    defaults.update(overrides)
    return ClusterGateway(pool, ClusterConfig(**defaults))


def _cross_shard_query(cluster, size=2):
    """A query whose primaries span ``size`` distinct shards."""
    names = sorted(cluster.available_tasks())
    picked = [names[0]]
    shards = {cluster.shards_of(names[0])[0]}
    for name in names[1:]:
        if cluster.shards_of(name)[0] not in shards:
            picked.append(name)
            shards.add(cluster.shards_of(name)[0])
        if len(picked) == size:
            break
    assert len(picked) == size, "hierarchy too small to span shards"
    return tuple(picked)


@pytest.fixture()
def cluster(wide_pool):
    pool, _ = wide_pool
    gw = _make(pool)
    yield gw
    gw.close()


class TestServe:
    def test_every_task_is_placed(self, cluster, wide_pool):
        pool, _ = wide_pool
        assert cluster.available_tasks() == tuple(sorted(pool.expert_names()))
        held = set()
        for shard in cluster.shards:
            held.update(shard.task_names())
        assert held == set(pool.expert_names())

    def test_cross_shard_prediction_bit_identical_to_single_pool(
        self, cluster, wide_pool
    ):
        pool, data = wide_pool
        query = _cross_shard_query(cluster)
        response = cluster.serve(query)
        assert cluster.metrics.counter("cross_shard") == 1
        rebuilt = deserialize_task_model(response.payload)
        network, _ = pool.consolidate(list(query))
        x = data.test.images[:24]
        assert np.array_equal(rebuilt.logits(x), batched_forward(network, x))
        from tests.conftest import assert_fused_ids_match

        # predict() runs the fused path: allclose to the loop, tie-tolerant
        assert_fused_ids_match(
            rebuilt.predict(x), batched_forward(network, x), rebuilt.task.classes
        )

    def test_single_shard_queries_use_fast_path(self, cluster):
        name = cluster.available_tasks()[0]
        cluster.serve([name])
        assert cluster.metrics.counter("cross_shard") == 0
        assert cluster.metrics.fanout_histogram() == {1: 1}
        shard_id = cluster.shards_of(name)[0]
        assert cluster.shards[shard_id].gateway.metrics.counter("requests") == 1

    def test_permuted_cross_shard_queries_share_payload(self, cluster):
        query = _cross_shard_query(cluster)
        first = cluster.serve(query)
        second = cluster.serve(tuple(reversed(query)))
        assert second.payload_cache_hit
        assert second.payload is first.payload

    def test_unknown_task_raises_keyerror(self, cluster):
        with pytest.raises(KeyError, match="dragons"):
            cluster.serve(["dragons"])

    def test_unknown_transport_rejected(self, cluster):
        with pytest.raises(ValueError, match="transport"):
            cluster.serve([cluster.available_tasks()[0]], transport="float16")

    def test_fetch_transport_must_be_exact(self):
        with pytest.raises(ValueError, match="float-exact"):
            ClusterConfig(fetch_transport="uint8")

    def test_get_model_matches_consolidate(self, cluster, wide_pool):
        pool, data = wide_pool
        query = _cross_shard_query(cluster)
        model = cluster.get_model(query)
        network, _ = pool.consolidate(sorted(query))
        x = data.test.images[:16]
        assert np.array_equal(model.logits(x), batched_forward(network, x))

    def test_submit_and_close(self, wide_pool):
        pool, _ = wide_pool
        cluster = _make(pool)
        future = cluster.submit([cluster.available_tasks()[0]])
        assert future.result(timeout=60).payload_bytes > 0
        cluster.close()
        with pytest.raises(RuntimeError):
            cluster.submit([cluster.available_tasks()[0]])

    def test_composite_cache_hits_do_not_inflate_shard_traffic(self, cluster):
        query = _cross_shard_query(cluster)
        cluster.serve(query)
        before = cluster.metrics.shard_requests()
        cluster.serve(query)  # composite payload hit: no shard is touched
        assert cluster.metrics.shard_requests() == before

    def test_cache_stats_aggregate_shard_tiers(self, cluster):
        query = _cross_shard_query(cluster)
        cluster.serve(query)
        cluster.serve(query)
        stats = cluster.cache_stats()
        assert set(stats) == {
            "model",
            "payload",
            "composite_model",
            "composite_payload",
            "trunk",
            "remote_heads",
            "result",
        }
        assert stats["composite_payload"].hits == 1
        assert stats["payload"].hits >= 1  # aggregate includes the composite tier


class TestReplication:
    def test_replicated_hot_task_reduces_fanout(self, wide_pool):
        pool, _ = wide_pool
        names = sorted(pool.expert_names())
        hot = names[0]
        router = ShardRouter(num_shards=4)
        router.replicate(hot, 4)
        cluster = ClusterGateway(
            pool, ClusterConfig(num_shards=4, workers_per_shard=1), router=router
        )
        try:
            partner = next(
                n for n in names[1:] if router.shard_for(n) != router.shard_for(hot)
            )
            cluster.serve([hot, partner])
            # hot is replicated everywhere, so the pair stays on one shard
            assert cluster.metrics.fanout_histogram() == {1: 1}
            assert len(cluster.shards_of(hot)) == 4
        finally:
            cluster.close()


    def test_router_replication_must_match_config(self, wide_pool):
        pool, _ = wide_pool
        with pytest.raises(ValueError, match="replicates"):
            ClusterGateway(
                pool,
                ClusterConfig(num_shards=4),
                router=ShardRouter(4, replication=2),
            )


class TestRebalance:
    def test_rebalance_preserves_answers_and_moves_experts(self, wide_pool):
        pool, data = wide_pool
        cluster = _make(pool)
        try:
            query = _cross_shard_query(cluster)
            before = deserialize_task_model(cluster.serve(query).payload)
            task = query[0]
            old_primary = cluster.shards_of(task)[0]
            new_primary = (old_primary + 1) % 4
            cluster.router.pin(task, new_primary)
            report = cluster.rebalance()
            assert any(m[0] == task for m in report.moved)
            assert cluster.shards_of(task)[0] == new_primary
            assert cluster.shards[new_primary].holds(task)
            assert not cluster.shards[old_primary].holds(task)
            after_response = cluster.serve(query)
            assert not after_response.payload_cache_hit  # moved entry was dropped
            after = deserialize_task_model(after_response.payload)
            x = data.test.images[:24]
            assert np.array_equal(before.logits(x), after.logits(x))
        finally:
            cluster.close()

    def test_rebalance_invalidates_moved_composites(self, wide_pool):
        pool, _ = wide_pool
        cluster = _make(pool)
        try:
            query = _cross_shard_query(cluster)
            cluster.serve(query)
            assert len(cluster.payload_cache) == 1
            task = query[0]
            cluster.router.pin(task, (cluster.shards_of(task)[0] + 1) % 4)
            report = cluster.rebalance()
            assert report.composite_entries_dropped >= 1
            assert len(cluster.payload_cache) == 0
        finally:
            cluster.close()

    def test_rebalance_under_live_traffic_never_errors(self, wide_pool):
        """Concurrent serves replan when a migration races their plan."""
        import threading

        pool, _ = wide_pool
        cluster = _make(pool)
        try:
            names = sorted(cluster.available_tasks())
            queries = [(n,) for n in names] + [tuple(names[:2]), tuple(names[2:4])]
            errors = []
            stop = threading.Event()

            def client():
                while not stop.is_set():
                    for query in queries:
                        try:
                            cluster.serve(query)
                        except Exception as exc:  # pragma: no cover
                            errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(2)]
            for t in threads:
                t.start()
            for round_trip in range(8):
                for i, name in enumerate(names):
                    cluster.router.pin(name, (i + round_trip) % 4)
                cluster.rebalance()
            stop.set()
            for t in threads:
                t.join()
            assert errors == []
        finally:
            cluster.close()

    def test_noop_rebalance_reports_nothing(self, cluster):
        report = cluster.rebalance()
        assert report.moved == ()
        assert report.installs == report.drops == 0

    def test_replacement_router_must_match_shard_count(self, cluster):
        with pytest.raises(ValueError):
            cluster.rebalance(ShardRouter(num_shards=2))


class TestInvalidation:
    def test_reextraction_drops_dependent_entries_everywhere(self, wide_pool):
        pool, data = wide_pool
        cluster = _make(pool)
        query = _cross_shard_query(cluster)
        task = query[0]
        original = pool.experts[task]
        try:
            single = (task,)
            cluster.serve(query)
            cluster.serve(single)
            version = pool.expert_version(task)
            # swap in a structurally identical head with different weights
            donor = next(n for n in pool.expert_names() if n != task)
            pool.attach_expert(task, pool.experts[donor])
            assert pool.expert_version(task) == version + 1
            cross = cluster.serve(query)
            local = cluster.serve(single)
            assert not cross.payload_cache_hit and not cross.model_cache_hit
            assert not local.payload_cache_hit and not local.model_cache_hit
            # the served payloads really contain the new weights
            rebuilt = deserialize_task_model(cross.payload)
            network, _ = pool.consolidate(list(query))
            x = data.test.images[:16]
            assert np.array_equal(rebuilt.logits(x), batched_forward(network, x))
        finally:
            cluster.close()
            pool.attach_expert(task, original)  # undo for other tests


class TestMigrationPayloads:
    def test_rebalance_ships_serialized_flat_payloads(self, wide_pool):
        """Migration crosses the wire as raw+zlib bytes, counted in metrics."""
        pool, data = wide_pool
        cluster = _make(pool)
        try:
            task = sorted(cluster.available_tasks())[0]
            old_primary = cluster.shards_of(task)[0]
            new_primary = (old_primary + 1) % 4
            cluster.router.pin(task, new_primary)
            report = cluster.rebalance()
            assert any(m[0] == task for m in report.moved)
            assert report.migrated_bytes > 0
            assert cluster.metrics.counter("migrated_bytes") == report.migrated_bytes
            assert cluster.metrics.counter("expert_migrations") >= 1
            # the migrated head is a deserialized copy, not the pool's object,
            # yet it answers bit-identically (the codec is float-exact)
            shard_head = cluster.shards[new_primary].pool.experts[task]
            assert shard_head is not pool.experts[task]
            rebuilt = deserialize_task_model(cluster.serve((task,)).payload)
            network, _ = pool.consolidate([task])
            x = data.test.images[:16]
            assert np.array_equal(rebuilt.logits(x), batched_forward(network, x))
        finally:
            cluster.close()

    def test_bulk_moves_share_one_payload_per_route(self, wide_pool):
        """Several experts moving between the same pair of shards ship together."""
        pool, _ = wide_pool
        cluster = _make(pool)
        try:
            names = sorted(cluster.available_tasks())
            # pin everything to shard 0, then everything to shard 1: the
            # second rebalance moves every expert along the same 0->1 route
            for name in names:
                cluster.router.pin(name, 0)
            cluster.rebalance()
            cluster.metrics.serving._counters.clear()  # isolate the bulk move
            for name in names:
                cluster.router.pin(name, 1)
            report = cluster.rebalance()
            assert len(report.moved) == len(names)
            # one bulk payload for the single 0->1 route, not one per expert
            assert cluster.metrics.counter("migration_payloads") == 1
            assert cluster.metrics.counter("expert_migrations") == len(names)
            assert report.migrated_bytes > 0
        finally:
            cluster.close()


class TestShardErrorContext:
    """Errors raised while a shard serves must carry the shard id.

    Once shards are remote worker processes, a failure report without the
    shard id is unactionable; the tag is applied by the gateway for
    in-process shards and by the wire-protocol ERROR frames for remote
    ones, so every backend reports the same way.
    """

    def test_predict_failure_names_the_shard(self, cluster, wide_pool, monkeypatch):
        pool, data = wide_pool
        task = sorted(cluster.available_tasks())[0]
        (shard_id,) = cluster.shards_of(task)

        def boom(images, names):
            raise RuntimeError("fused bank exploded")

        monkeypatch.setattr(cluster.shards[shard_id].gateway, "predict", boom)
        with pytest.raises(RuntimeError, match=rf"\[shard {shard_id}\] fused bank"):
            cluster.predict(data.test.images[:4], (task,))

    def test_submit_predict_failure_names_the_shard(
        self, cluster, wide_pool, monkeypatch
    ):
        pool, data = wide_pool
        task = sorted(cluster.available_tasks())[0]
        (shard_id,) = cluster.shards_of(task)

        def boom(*args, **kwargs):
            raise RuntimeError("drain died")

        # the micro-batched path resolves requests through _predict_one;
        # breaking it surfaces the error through the relayed future
        monkeypatch.setattr(cluster.shards[shard_id].gateway, "_predict_one", boom)
        future = cluster.submit_predict(data.test.images[:4], (task,))
        with pytest.raises(RuntimeError, match=rf"\[shard {shard_id}\] drain died"):
            future.result(timeout=30)

    def test_fetch_failure_names_the_source_shard(self, cluster, monkeypatch):
        query = _cross_shard_query(cluster)
        # make the build fetch from the non-home shard, then break that fetch
        plans = {name: cluster.shards_of(name)[0] for name in query}
        non_home = max(plans.values())  # home ties break toward the lowest id

        def boom(names, transport):
            raise RuntimeError("socket reset")

        monkeypatch.setattr(cluster.shards[non_home], "fetch_heads", boom)
        with pytest.raises(RuntimeError, match=rf"\[shard {non_home}\] socket reset"):
            cluster.serve(query)

    def test_keyerror_keeps_type_through_the_tag(self, cluster, wide_pool):
        """A task the placement knows but the shard lost raises a tagged
        KeyError after the replan retry — same type the retry contract
        dispatches on, now with the shard id in the message."""
        pool, _ = wide_pool
        task = sorted(cluster.available_tasks())[0]
        (shard_id,) = cluster.shards_of(task)
        # drop the expert from the shard *view* only: the cluster placement
        # still routes to this shard, so serving fails inside it
        cluster.shards[shard_id].pool.experts.pop(task)
        with pytest.raises(KeyError) as excinfo:
            cluster.serve((task,))
        assert f"[shard {shard_id}]" in str(excinfo.value)
        assert cluster.metrics.counter("plan_retries") >= 1
