"""Cluster prediction tier and the version-keyed remote-head LRU."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterGateway
from repro.distill import batched_forward
from tests.conftest import assert_fused_ids_match


def _make(pool, **overrides):
    defaults = dict(num_shards=4, workers_per_shard=1)
    defaults.update(overrides)
    return ClusterGateway(pool, ClusterConfig(**defaults))


def _cross_shard_query(cluster, size=2):
    names = sorted(cluster.available_tasks())
    picked = [names[0]]
    shards = {cluster.shards_of(names[0])[0]}
    for name in names[1:]:
        if cluster.shards_of(name)[0] not in shards:
            picked.append(name)
            shards.add(cluster.shards_of(name)[0])
        if len(picked) == size:
            break
    assert len(picked) == size, "hierarchy too small to span shards"
    return tuple(picked)


def _assert_matches_reference(class_ids, pool, query, x):
    """Fused cluster ids vs the per-head-loop reference (tie-tolerant)."""
    network, composite = pool.consolidate(list(query))
    assert_fused_ids_match(class_ids, batched_forward(network, x), composite.classes)


class TestClusterPredict:
    def test_single_shard_predict_matches_reference(self, wide_pool):
        pool, data = wide_pool
        x = data.test.images[:16]
        with _make(pool) as cluster:
            name = sorted(cluster.available_tasks())[0]
            response = cluster.predict(x, [name])
            _assert_matches_reference(response.class_ids, pool, (name,), x)

    def test_cross_shard_predict_matches_reference(self, wide_pool):
        pool, data = wide_pool
        x = data.test.images[:16]
        with _make(pool) as cluster:
            query = _cross_shard_query(cluster)
            response = cluster.predict(x, query)
            assert cluster.metrics.counter("cross_shard") >= 1
            _assert_matches_reference(response.class_ids, pool, query, x)

    def test_trunk_features_shared_across_shards(self, wide_pool):
        """Features computed by one shard's gateway serve every other shard."""
        pool, data = wide_pool
        x = data.test.images[:12]
        with _make(pool) as cluster:
            names = sorted(cluster.available_tasks())
            distinct = [
                n for n in names if cluster.shards_of(n)[0] != cluster.shards_of(names[0])[0]
            ]
            cold = cluster.predict(x, [names[0]])
            warm = cluster.predict(x, [distinct[0]])  # other shard, same library
            assert not cold.trunk_cache_hit
            assert warm.trunk_cache_hit
            assert cluster.cache_stats()["trunk"].hits >= 1

    def test_submit_predict_matches_inline(self, wide_pool):
        pool, data = wide_pool
        with _make(pool) as cluster:
            query = _cross_shard_query(cluster)
            single = sorted(cluster.available_tasks())[0]
            futures = [
                cluster.submit_predict(data.test.images[:8], [single]),
                cluster.submit_predict(data.test.images[8:16], query),
            ]
            first, second = (f.result(timeout=30) for f in futures)
        _assert_matches_reference(first.class_ids, pool, (single,), data.test.images[:8])
        _assert_matches_reference(second.class_ids, pool, query, data.test.images[8:16])

    def test_unknown_task_raises(self, wide_pool):
        pool, data = wide_pool
        with _make(pool) as cluster:
            with pytest.raises(KeyError):
                cluster.predict(data.test.images[:4], ["dragons"])


class TestRemoteHeadCache:
    def test_rebuild_reuses_cached_remote_heads(self, wide_pool):
        """Dropping the composite caches must not refetch remote payloads."""
        pool, _ = wide_pool
        with _make(pool) as cluster:
            query = _cross_shard_query(cluster)
            cluster.serve(query)
            fetches = cluster.metrics.counter("remote_fetches")
            assert fetches >= 1
            cluster.model_cache.clear()
            cluster.payload_cache.clear()
            cluster.serve(query)
            assert cluster.metrics.counter("remote_fetches") == fetches
            assert cluster.metrics.counter("remote_head_hits") >= 1

    def test_shared_remote_expert_cached_across_composites(self, wide_pool):
        """Two composites sharing a remote expert fetch it once."""
        pool, _ = wide_pool
        with _make(pool) as cluster:
            query = _cross_shard_query(cluster, size=3)
            cluster.serve(query[:2])
            before = cluster.metrics.counter("remote_fetch_bytes")
            cluster.serve(query)  # superset: remote heads overlap
            # at least one overlapping head came from the cache this time
            assert (
                cluster.metrics.counter("remote_head_hits") >= 1
                or cluster.metrics.counter("remote_fetch_bytes") == before
            )

    def test_version_bump_invalidates_remote_head_entries(self, wide_pool):
        pool, data = wide_pool
        with _make(pool) as cluster:
            query = _cross_shard_query(cluster)
            cluster.serve(query)
            assert len(cluster.remote_head_cache) >= 1
            cached_names = {key[0] for key in cluster.remote_head_cache.keys()}
            victim = next(iter(cached_names))
            pool.attach_expert(victim, pool.experts[victim])  # version bump
            assert all(
                key[0] != victim for key in cluster.remote_head_cache.keys()
            )
            # a rebuild fetches the new version and still predicts correctly
            cluster.model_cache.clear()
            cluster.payload_cache.clear()
            response = cluster.predict(data.test.images[:8], query)
            _assert_matches_reference(
                response.class_ids, pool, query, data.test.images[:8]
            )

    def test_library_reextraction_resyncs_shards_and_clears_tiers(self, tiny_hierarchy):
        """A trunk swap repoints every shard view and drops every tier."""
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=8, train_per_class=15)
        x = data.test.images[:10]
        with _make(pool, num_shards=2) as cluster:
            query = _cross_shard_query(cluster)
            cluster.predict(x, query)
            assert len(cluster.trunk_cache) >= 1
            pool.extract_library(data.train.images)  # new frozen trunk
            assert len(cluster.trunk_cache) == 0
            assert len(cluster.model_cache) == 0 and len(cluster.remote_head_cache) == 0
            for shard in cluster.shards:
                assert shard.pool.library is pool.library
                assert len(shard.gateway.model_cache) == 0
            response = cluster.predict(x, query)
            _assert_matches_reference(response.class_ids, pool, query, x)

    def test_zero_budget_disables_remote_head_cache(self, wide_pool):
        pool, _ = wide_pool
        with _make(pool, remote_head_cache_bytes=0) as cluster:
            query = _cross_shard_query(cluster)
            cluster.serve(query)
            fetches = cluster.metrics.counter("remote_fetches")
            cluster.model_cache.clear()
            cluster.payload_cache.clear()
            cluster.serve(query)
            assert cluster.metrics.counter("remote_fetches") == 2 * fetches


class TestClusterResultCache:
    def test_cross_shard_repeat_hits_result_cache(self, wide_pool):
        pool, data = wide_pool
        x = data.test.images[:10]
        with _make(pool) as cluster:
            query = _cross_shard_query(cluster)
            cold = cluster.predict(x, query)
            warm = cluster.predict(x, query)
            assert not cold.result_cache_hit
            assert warm.result_cache_hit
            assert np.array_equal(cold.class_ids, warm.class_ids)
            assert cluster.metrics.counter("predict_result_hits") == 1

    def test_single_shard_repeat_hits_shard_result_cache(self, wide_pool):
        pool, data = wide_pool
        x = data.test.images[:10]
        with _make(pool) as cluster:
            name = sorted(cluster.available_tasks())[0]
            cluster.predict(x, [name])
            warm = cluster.predict(x, [name])
            assert warm.result_cache_hit
            assert cluster.cache_stats()["result"].hits >= 1

    def test_reextraction_evicts_cluster_results(self, wide_pool):
        pool, data = wide_pool
        x = data.test.images[:10]
        with _make(pool) as cluster:
            query = _cross_shard_query(cluster)
            cluster.predict(x, query)
            assert len(cluster.result_cache) == 1
            pool.extract_expert(query[0], data.train.images)
            assert len(cluster.result_cache) == 0
            response = cluster.predict(x, query)
            assert not response.result_cache_hit
            _assert_matches_reference(response.class_ids, pool, query, x)
