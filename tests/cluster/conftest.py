"""Fixtures for the cluster tier: a pool wide enough to shard meaningfully."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def wide_pool():
    """(pool, data) with 6 primitive tasks — enough to span 4 shards."""
    from repro.serving.demo import build_demo_pool

    return build_demo_pool(
        num_tasks=6, train_per_class=20, test_per_class=10, epochs=4, seed=17
    )
