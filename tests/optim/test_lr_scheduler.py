"""Learning-rate schedule behaviour."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, ConstantLR, CosineAnnealingLR, MultiStepLR, StepLR


@pytest.fixture
def opt():
    return SGD([Parameter(np.ones(1))], lr=1.0)


class TestConstant:
    def test_never_changes(self, opt):
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == 1.0


class TestStepLR:
    def test_decays_every_step_size(self, opt):
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(6)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01, 0.001])

    def test_updates_optimizer(self, opt):
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == 0.5


class TestMultiStepLR:
    def test_milestones(self, opt):
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_unsorted_milestones_ok(self, opt):
        sched = MultiStepLR(opt, milestones=[4, 2], gamma=0.1)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.1)


class TestCosine:
    def test_monotone_decreasing(self, opt):
        sched = CosineAnnealingLR(opt, t_max=10)
        lrs = [sched.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_reaches_eta_min(self, opt):
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.01)

    def test_clamps_past_t_max(self, opt):
        sched = CosineAnnealingLR(opt, t_max=5)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.0, abs=1e-9)

    def test_half_period_half_lr(self, opt):
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            lr = sched.step()
        assert lr == pytest.approx(0.5)
