"""SGD optimizer semantics and convergence."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD
from repro.tensor import Tensor


def quadratic_step(param, optimizer):
    """One optimization step of f(w) = ||w||^2 / 2."""
    optimizer.zero_grad()
    loss = (param * param).sum() * 0.5
    loss.backward()
    optimizer.step()
    return loss.item()


class TestBasics:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(2))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(2))], momentum=-0.1)

    def test_plain_sgd_update(self):
        p = Parameter(np.array([1.0, -2.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0)
        p.grad = np.array([0.5, 0.5])
        opt.step()
        assert np.allclose(p.data, [0.95, -2.05])

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad -> no update, no crash
        assert np.allclose(p.data, 1.0)

    def test_frozen_param_skipped(self):
        p = Parameter(np.ones(2))
        p.requires_grad = False
        p.grad = np.ones(2)
        SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0).step()
        assert np.allclose(p.data, 1.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(2))
        p.grad = np.ones(2)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestWeightDecayAndMomentum:
    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 10.0

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.array([5.0]))
            opt = SGD([p], lr=0.01, momentum=momentum, weight_decay=0.0)
            for _ in range(30):
                loss = quadratic_step(p, opt)
            losses[momentum] = loss
        assert losses[0.9] < losses[0.0]

    def test_nesterov_converges(self):
        p = Parameter(np.array([3.0]))
        opt = SGD([p], lr=0.05, momentum=0.9, weight_decay=0.0, nesterov=True)
        for _ in range(100):
            quadratic_step(p, opt)
        assert abs(p.data[0]) < 0.1

    def test_state_dict(self):
        opt = SGD([Parameter(np.ones(1))], lr=0.2, momentum=0.8, weight_decay=1e-4)
        sd = opt.state_dict()
        assert sd["lr"] == 0.2 and sd["momentum"] == 0.8


class TestConvergence:
    def test_quadratic_convergence(self):
        p = Parameter(np.array([4.0, -3.0, 2.0]))
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(200):
            quadratic_step(p, opt)
        assert np.abs(p.data).max() < 1e-3

    def test_linear_regression(self, rng):
        true_w = np.array([2.0, -1.0])
        x = rng.standard_normal((64, 2))
        y = x @ true_w
        w = Parameter(np.zeros(2))
        opt = SGD([w], lr=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(150):
            opt.zero_grad()
            pred = Tensor(x) @ w
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        assert np.allclose(w.data, true_w, atol=1e-2)
