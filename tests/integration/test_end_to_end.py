"""End-to-end integration: the full experiment machinery on a micro track.

Builds a real (tiny) oracle, extracts a pool, runs every specialization and
consolidation method through the artifact store, and checks the qualitative
properties the paper's evaluation rests on.
"""

import numpy as np
import pytest

from repro.eval import (
    ArtifactStore,
    confidence_figure,
    run_service_method,
    run_specialization,
    select_combos,
)
from repro.eval.service import SERVICE_METHODS


class TestArtifactStore:
    def test_oracle_trains_once_and_caches(self, micro_track, store):
        model1, meta1 = store.oracle(micro_track)
        model2, meta2 = store.oracle(micro_track)
        assert model1 is model2
        assert meta1["test_accuracy"] > 0.8
        # a fresh store instance reloads from disk instead of retraining
        reload_store = ArtifactStore(store.root)
        model3, meta3 = reload_store.oracle(micro_track)
        x = store.dataset(micro_track).test.images[:4]
        from repro.distill import batched_forward

        assert np.allclose(batched_forward(model1, x), batched_forward(model3, x), atol=1e-5)

    def test_pool_cached_on_disk(self, micro_track, store):
        pool1 = store.pool(micro_track)
        reload_store = ArtifactStore(store.root)
        pool2 = reload_store.pool(micro_track)
        assert set(pool1.expert_names()) == set(pool2.expert_names())

    def test_result_records_cached(self, micro_track, store):
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1}

        store.result(micro_track, "unit", "probe", compute)
        store.result(micro_track, "unit", "probe", compute)
        assert len(calls) == 1


class TestSpecializationPipeline:
    @pytest.mark.parametrize("method", ["oracle", "kd", "scratch", "transfer", "ckd"])
    def test_each_method_produces_record(self, micro_track, store, method):
        data = store.dataset(micro_track)
        task = micro_track.selected_tasks(data.hierarchy)[0]
        record = run_specialization(micro_track, store, method, task)
        assert 0.0 <= record["accuracy"] <= 1.0
        assert record["params"] > 0
        assert record["flops"] > 0

    def test_oracle_upper_bounds_kd(self, micro_track, store):
        data = store.dataset(micro_track)
        task = micro_track.selected_tasks(data.hierarchy)[0]
        oracle_acc = run_specialization(micro_track, store, "oracle", task)["accuracy"]
        kd_acc = run_specialization(micro_track, store, "kd", task)["accuracy"]
        assert oracle_acc >= kd_acc - 0.05

    def test_specialists_much_smaller_than_oracle(self, micro_track, store):
        data = store.dataset(micro_track)
        task = micro_track.selected_tasks(data.hierarchy)[0]
        oracle_rec = run_specialization(micro_track, store, "oracle", task)
        ckd_rec = run_specialization(micro_track, store, "ckd", task)
        assert ckd_rec["params"] < oracle_rec["params"] / 3

    def test_confidence_figure_structure(self, micro_track, store):
        fig = confidence_figure(micro_track, store)
        for method in ("scratch", "transfer", "ckd"):
            assert len(fig[method]["histogram"]) == 10
            assert 0.0 <= fig[method]["overconfident_rate"] <= 1.0


class TestServicePipeline:
    def test_every_method_runs(self, micro_track, store):
        data = store.dataset(micro_track)
        tasks = micro_track.selected_tasks(data.hierarchy)
        combo = select_combos(tasks, 2, 1, seed=0)[0]
        for method in SERVICE_METHODS:
            record = run_service_method(micro_track, store, method, combo)
            assert 0.0 <= record["accuracy"] <= 1.0, method
            assert record["params"] > 0

    def test_poe_is_train_free(self, micro_track, store):
        data = store.dataset(micro_track)
        tasks = micro_track.selected_tasks(data.hierarchy)
        combo = select_combos(tasks, 2, 1, seed=0)[0]
        record = run_service_method(micro_track, store, "poe", combo)
        assert record["train_seconds"] < 0.05  # assembly, not training

    def test_poe_beats_chance_comfortably(self, micro_track, store):
        data = store.dataset(micro_track)
        tasks = micro_track.selected_tasks(data.hierarchy)
        combo = select_combos(tasks, 3, 1, seed=0)[0]
        record = run_service_method(micro_track, store, "poe", combo)
        chance = 1.0 / record["num_classes"]
        assert record["accuracy"] > 2.5 * chance

    def test_training_methods_record_curves(self, micro_track, store):
        data = store.dataset(micro_track)
        tasks = micro_track.selected_tasks(data.hierarchy)
        combo = select_combos(tasks, 2, 1, seed=0)[0]
        record = run_service_method(micro_track, store, "scratch", combo)
        assert len(record["curve"]) >= 1
        assert record["train_seconds"] > 0
        assert record["time_to_best"] is not None

    def test_poe_ablation_variants_run(self, micro_track, store):
        data = store.dataset(micro_track)
        tasks = micro_track.selected_tasks(data.hierarchy)
        combo = select_combos(tasks, 2, 1, seed=0)[0]
        accs = {}
        for variant in ("poe", "poe-soft", "poe-scale"):
            accs[variant] = run_service_method(micro_track, store, variant, combo)["accuracy"]
        assert all(0.0 <= a <= 1.0 for a in accs.values())

    def test_branched_poe_smaller_than_wide_students(self, micro_track, store):
        """The branched architecture's param advantage (Table 3)."""
        data = store.dataset(micro_track)
        tasks = micro_track.selected_tasks(data.hierarchy)
        combo = select_combos(tasks, 3, 1, seed=0)[0]
        poe = run_service_method(micro_track, store, "poe", combo)
        scratch = run_service_method(micro_track, store, "scratch", combo)
        assert poe["params"] < scratch["params"]
