"""Shared session fixtures for the integration suite.

These used to live in ``test_end_to_end.py`` and be pulled into sibling
modules with a relative import, which only works when the test directory
is a package — a conftest is the supported way to share fixtures.
"""

import pytest

from repro.eval import ArtifactStore, TrackConfig


@pytest.fixture(scope="session")
def micro_track():
    return TrackConfig(
        name="micro",
        kind="cifar",
        num_superclasses=4,
        classes_per_super=2,
        train_per_class=40,
        test_per_class=15,
        image_size=6,
        noise_std=0.5,
        oracle_k=2.0,
        library_k=1.0,
        batch_size=32,
        oracle_epochs=8,
        library_epochs=6,
        expert_epochs=6,
        service_epochs=5,
        num_selected_tasks=4,
        combos_per_nq=1,
        seed=0,
    )


@pytest.fixture(scope="session")
def store(tmp_path_factory):
    return ArtifactStore(str(tmp_path_factory.mktemp("artifacts")))
