"""Integration: ablation pool variants, KD students, and model shipping
on the shared micro track (artifacts reused from test_end_to_end)."""

import numpy as np
import pytest

from repro.core import ModelQueryRequest, PoEClient, PoEServer
from repro.distill import batched_forward
from repro.eval import select_combos
from repro.eval.metrics import specialized_accuracy


class TestPoolVariants:
    def test_variants_share_library(self, micro_track, store):
        base = store.pool(micro_track)
        soft = store.pool_variant(micro_track, "soft")
        assert soft.library is base.library

    def test_variant_experts_differ_from_base(self, micro_track, store):
        base = store.pool(micro_track)
        scale = store.pool_variant(micro_track, "scale")
        name = micro_track.selected_tasks(store.dataset(micro_track).hierarchy)[0]
        base_state = base.experts[name].state_dict()
        scale_state = scale.experts[name].state_dict()
        assert any(
            not np.allclose(base_state[k], scale_state[k]) for k in base_state
        )

    def test_both_variant_is_base_pool(self, micro_track, store):
        assert store.pool_variant(micro_track, "both") is store.pool(micro_track)

    def test_unknown_variant_rejected(self, micro_track, store):
        with pytest.raises(ValueError):
            store.pool_variant(micro_track, "l3")

    def test_l2_variant_builds_and_serves(self, micro_track, store):
        pool = store.pool_variant(micro_track, "l2")
        data = store.dataset(micro_track)
        tasks = micro_track.selected_tasks(data.hierarchy)
        model, composite = pool.consolidate(list(tasks[:2]))
        acc = specialized_accuracy(model, data.test, composite)
        assert acc > 1.5 / len(composite)  # well above chance


class TestKDGenericStudents:
    def test_width_scales_with_multiplier(self, micro_track, store):
        from repro.models import count_params

        small = store.kd_generic(micro_track, ks_multiplier=1)
        wide = store.kd_generic(micro_track, ks_multiplier=3)
        assert count_params(wide) > count_params(small)
        assert small.num_classes == wide.num_classes == store.dataset(micro_track).num_classes

    def test_cached_instance_reused(self, micro_track, store):
        a = store.kd_generic(micro_track, ks_multiplier=1)
        b = store.kd_generic(micro_track, ks_multiplier=1)
        assert a is b


class TestShippingOnRealPool:
    def test_client_receives_equivalent_model(self, micro_track, store):
        pool = store.pool(micro_track)
        data = store.dataset(micro_track)
        tasks = list(micro_track.selected_tasks(data.hierarchy)[:2])
        client = PoEClient(PoEServer(pool))
        shipped = client.request_model(tasks)
        local, composite = pool.consolidate(tasks)
        x = data.test.images[:20]
        assert np.allclose(shipped.logits(x), batched_forward(local, x), atol=1e-4)

    def test_quantized_shipping_preserves_accuracy(self, micro_track, store):
        pool = store.pool(micro_track)
        data = store.dataset(micro_track)
        tasks = list(micro_track.selected_tasks(data.hierarchy)[:2])
        composite = data.hierarchy.composite(tasks)
        client = PoEClient(PoEServer(pool))
        full = client.request_model(tasks, transport="float32")
        packed = client.request_model(tasks, transport="uint8")
        acc_full = specialized_accuracy(full.network, data.test, composite)
        acc_packed = specialized_accuracy(packed.network, data.test, composite)
        assert acc_packed > acc_full - 0.05

    def test_scratch_teachers_cached_on_disk(self, micro_track, store):
        from repro.eval import ArtifactStore

        name = micro_track.selected_tasks(store.dataset(micro_track).hierarchy)[0]
        first = store.scratch_teacher(micro_track, name)
        fresh_store = ArtifactStore(store.root)
        second = fresh_store.scratch_teacher(micro_track, name)
        x = store.dataset(micro_track).test.images[:8]
        assert np.allclose(
            batched_forward(first, x), batched_forward(second, x), atol=1e-5
        )
