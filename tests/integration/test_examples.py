"""Example scripts: compile cleanly; optionally run end-to-end.

Full execution takes ~1 min per example, so by default we verify the
scripts parse/compile and expose a ``main``; set ``REPRO_RUN_EXAMPLES=1``
to execute them for real (the benchmark environment does this once).
"""

import os
import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_defines_main(path):
    source = path.read_text()
    assert "def main(" in source
    assert '__name__ == "__main__"' in source


@pytest.mark.skipif(
    os.environ.get("REPRO_RUN_EXAMPLES", "") != "1",
    reason="set REPRO_RUN_EXAMPLES=1 to execute examples end-to-end",
)
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
