"""Canonical query identity: one key for every permutation of a task set."""

import pytest

from repro.data import ClassHierarchy
from repro.serving import canonical_tasks, model_key, payload_key


class TestCanonicalTasks:
    def test_sorts_names(self):
        assert canonical_tasks(["pets", "birds", "fish"]) == ("birds", "fish", "pets")

    def test_permutations_share_identity(self):
        assert canonical_tasks(["a", "b"]) == canonical_tasks(["b", "a"])

    def test_deduplicates(self):
        assert canonical_tasks(["a", "b", "a"]) == ("a", "b")

    def test_single_string_is_one_task(self):
        assert canonical_tasks("pets") == ("pets",)

    def test_composite_task_accepted(self):
        hierarchy = ClassHierarchy({"x": ["x0"], "y": ["y0"], "z": ["z0"]})
        composite = hierarchy.composite(["z", "x"])
        assert canonical_tasks(composite) == ("x", "z")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            canonical_tasks([])

    def test_result_is_hashable(self):
        assert hash(canonical_tasks(["b", "a"])) == hash(("a", "b"))


class TestKeys:
    def test_model_key_is_canonical(self):
        assert model_key(["b", "a"]) == ("a", "b")

    def test_payload_key_includes_transport(self):
        assert payload_key(["b", "a"], "uint8") == (("a", "b"), "uint8")
        assert payload_key(["a", "b"], "float32") != payload_key(["a", "b"], "uint8")
