"""ServingGateway: canonicalization, cache tiers, single-flight coalescing."""

import threading
import time

import numpy as np
import pytest

from repro.serving import GatewayConfig, ServingGateway, canonical_tasks


@pytest.fixture()
def gateway(named_pool):
    pool, _, _ = named_pool
    gw = ServingGateway(pool)
    yield gw
    gw.close()


class CountingPool:
    """Wraps a trained pool, counting (and optionally slowing) consolidations."""

    def __init__(self, pool, delay=0.0):
        self._pool = pool
        self.delay = delay
        self.consolidations = 0
        self._lock = threading.Lock()
        self.config = pool.config
        self.hierarchy = pool.hierarchy

    def consolidate(self, query):
        with self._lock:
            self.consolidations += 1
        if self.delay:
            time.sleep(self.delay)
        return self._pool.consolidate(query)

    def expert_names(self):
        return self._pool.expert_names()


class TestServe:
    def test_serves_payload_with_canonical_tasks(self, gateway, named_pool):
        response = gateway.serve(["pets", "birds"])
        assert response.tasks == ("birds", "pets")
        assert response.payload_bytes == len(response.payload) > 0
        assert not response.payload_cache_hit and not response.coalesced

    def test_permuted_requests_share_payload(self, gateway):
        first = gateway.serve(["pets", "fish"])
        second = gateway.serve(["fish", "pets"])
        assert second.payload_cache_hit
        assert second.payload is first.payload  # same cached object, no re-serialize
        assert first.tasks == second.tasks

    def test_transport_isolates_cache_entries(self, gateway):
        full = gateway.serve(["pets"], transport="float32")
        packed = gateway.serve(["pets"], transport="uint8")
        assert not packed.payload_cache_hit
        assert packed.payload_bytes < full.payload_bytes

    def test_model_tier_shared_across_transports(self, gateway):
        gateway.serve(["pets", "birds"], transport="float32")
        response = gateway.serve(["pets", "birds"], transport="uint8")
        assert response.model_cache_hit  # consolidation reused, only serialize redone

    def test_unknown_task_raises_keyerror(self, gateway):
        with pytest.raises(KeyError):
            gateway.serve(["dragons"])

    def test_unknown_transport_rejected(self, gateway):
        with pytest.raises(ValueError, match="transport"):
            gateway.serve(["pets"], transport="float16")

    def test_failed_requests_counted(self, gateway):
        with pytest.raises(KeyError):
            gateway.serve(["dragons"])
        assert gateway.metrics.counter("errors") == 1
        assert gateway.metrics.counter("requests") == 1

    def test_payload_deserializes_to_working_model(self, gateway, named_pool):
        from repro.core import deserialize_task_model

        _, data, _ = named_pool
        response = gateway.serve(["fish", "pets"])
        model = deserialize_task_model(response.payload)
        preds = model.predict(data.test.images[:10])
        assert set(np.unique(preds)).issubset({0, 1, 4, 5})

    def test_metrics_recorded(self, gateway):
        gateway.serve(["pets"])
        gateway.serve(["pets"])
        snap = gateway.metrics.snapshot()
        assert snap["counters"]["requests"] == 2
        assert snap["stages"]["total"]["count"] == 2
        assert snap["stages"]["consolidate"]["count"] == 1
        assert snap["stages"]["serialize"]["count"] == 1
        stats = gateway.cache_stats()
        assert stats["payload"].hits == 1

    def test_render_stats_mentions_tiers(self, gateway):
        gateway.serve(["pets"])
        text = gateway.render_stats()
        assert "cache[payload]" in text and "cache[model]" in text
        assert "p99" in text


class TestCacheControl:
    def test_disabled_caches_still_serve(self, named_pool):
        pool, _, _ = named_pool
        config = GatewayConfig(model_cache_bytes=0, payload_cache_bytes=0)
        with ServingGateway(pool, config) as gateway:
            first = gateway.serve(["pets"])
            second = gateway.serve(["pets"])
            assert not second.payload_cache_hit and not second.model_cache_hit
            assert first.payload_bytes == second.payload_bytes

    def test_ttl_expires_payloads(self, named_pool):
        pool, _, _ = named_pool
        config = GatewayConfig(ttl_seconds=0.05)
        with ServingGateway(pool, config) as gateway:
            gateway.serve(["pets"])
            time.sleep(0.1)
            response = gateway.serve(["pets"])
            assert not response.payload_cache_hit
            assert gateway.payload_cache.stats().expirations >= 1


class TestInvalidation:
    def test_reextraction_drops_dependent_entries(self, named_pool):
        """A version bump invalidates immediately — no waiting for TTL."""
        pool, _, _ = named_pool
        with ServingGateway(pool) as gateway:
            gateway.serve(["pets", "birds"])
            gateway.serve(["fish"])
            pool.attach_expert("pets", pool.experts["pets"])  # version bump
            hit = gateway.serve(["fish"])
            missed = gateway.serve(["pets", "birds"])
            assert hit.payload_cache_hit  # unrelated entry untouched
            assert not missed.payload_cache_hit and not missed.model_cache_hit

    def test_invalidate_task_reports_dropped_count(self, named_pool):
        pool, _, _ = named_pool
        with ServingGateway(pool) as gateway:
            gateway.serve(["pets", "birds"])
            gateway.serve(["pets"], transport="uint8")
            # 2 payload entries + 2 model entries mention pets
            assert gateway.invalidate_task("pets") == 4
            assert gateway.invalidate_task("pets") == 0

    def test_closed_gateway_stops_listening(self, named_pool):
        pool, _, _ = named_pool
        gateway = ServingGateway(pool)
        gateway.serve(["pets"])
        gateway.close()
        entries = len(gateway.payload_cache)
        pool.attach_expert("pets", pool.experts["pets"])
        assert len(gateway.payload_cache) == entries  # listener removed


class TestCoalescing:
    def test_concurrent_duplicates_consolidate_exactly_once(self, named_pool):
        """The satellite guarantee: N concurrent identical queries, 1 build."""
        pool, _, _ = named_pool
        counting = CountingPool(pool, delay=0.15)
        clients = 6
        with ServingGateway(counting) as gateway:
            responses = [None] * clients
            barrier = threading.Barrier(clients)

            def client(i):
                barrier.wait()
                responses[i] = gateway.serve(["pets", "birds"])

            threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert counting.consolidations == 1
        payloads = {id(r.payload) for r in responses}
        assert len(payloads) == 1  # everyone got the leader's bytes
        coalesced = [r for r in responses if r.coalesced]
        leaders = [r for r in responses if not r.coalesced and not r.payload_cache_hit]
        assert len(leaders) == 1
        assert len(coalesced) == clients - 1
        assert gateway.metrics.counter("coalesced") == clients - 1

    def test_coalesced_error_propagates_to_all_waiters(self, named_pool):
        pool, _, _ = named_pool

        class FailingPool(CountingPool):
            def consolidate(self, query):
                super().consolidate(query)
                raise KeyError("boom")

        failing = FailingPool(pool, delay=0.1)
        clients = 4
        errors = []
        with ServingGateway(failing) as gateway:
            barrier = threading.Barrier(clients)

            def client(i):
                barrier.wait()
                try:
                    gateway.serve(["pets"])
                except KeyError as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(errors) == clients
        assert failing.consolidations == 1  # single flight even on failure

    def test_failed_flight_not_poisoned(self, named_pool):
        """After an error the key is released; the next request retries."""
        pool, _, _ = named_pool
        with ServingGateway(pool) as gateway:
            with pytest.raises(KeyError):
                gateway.serve(["dragons"])
            with pytest.raises(KeyError):
                gateway.serve(["dragons"])  # not a hung flight, a fresh error


class TestSubmit:
    def test_submit_returns_future_with_queue_wait(self, gateway):
        future = gateway.submit(["pets", "fish"])
        response = future.result(timeout=30)
        assert response.tasks == ("fish", "pets")
        assert response.queue_seconds >= 0.0
        assert gateway.metrics.stage_summary("queue")["count"] == 1

    def test_submit_after_close_rejected(self, named_pool):
        pool, _, _ = named_pool
        gateway = ServingGateway(pool)
        gateway.close()
        with pytest.raises(RuntimeError):
            gateway.submit(["pets"])

    def test_get_model_returns_canonical_model(self, gateway):
        model = gateway.get_model(["pets", "birds"])
        assert model.task.names == canonical_tasks(["pets", "birds"])
        again = gateway.get_model(["birds", "pets"])
        assert again is model  # model tier hit across permutations
