"""Zipfian workload generation and the closed/open-loop load drivers."""

import collections

import pytest

from repro.serving import (
    GatewayConfig,
    ServingGateway,
    ZipfianWorkload,
    run_closed_loop,
    run_open_loop,
)

TASKS = ("alpha", "beta", "gamma", "delta", "epsilon")


class TestZipfianWorkload:
    def test_universe_respects_cap_and_sizes(self):
        workload = ZipfianWorkload(TASKS, max_query_size=2, universe_size=8)
        assert len(workload.queries) == 8
        assert all(1 <= len(q) <= 2 for q in workload.queries)
        assert all(q == tuple(sorted(q)) for q in workload.queries)

    def test_sampling_is_deterministic(self):
        workload = ZipfianWorkload(TASKS, seed=5)
        assert workload.sample(20, seed=1) == workload.sample(20, seed=1)
        assert workload.sample(20, seed=1) != workload.sample(20, seed=2)

    def test_skew_concentrates_on_head(self):
        workload = ZipfianWorkload(TASKS, skew=2.0, universe_size=16, seed=0)
        counts = collections.Counter(
            tasks for tasks, _ in workload.sample(3000, seed=3)
        )
        head = workload.queries[0]
        tail = workload.queries[-1]
        assert counts[head] > counts.get(tail, 0) * 3

    def test_zero_skew_is_uniformish(self):
        workload = ZipfianWorkload(TASKS, skew=0.0, universe_size=4, seed=0)
        counts = collections.Counter(tasks for tasks, _ in workload.sample(4000, seed=3))
        assert min(counts.values()) > 700  # ~1000 each

    def test_transports_drawn_from_given_set(self):
        workload = ZipfianWorkload(TASKS, transports=("float32", "uint8"), seed=0)
        seen = {transport for _, transport in workload.sample(200, seed=4)}
        assert seen == {"float32", "uint8"}

    def test_popularity_sums_to_one(self):
        workload = ZipfianWorkload(TASKS)
        total = sum(p for _, p in workload.popularity())
        assert total == pytest.approx(1.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ZipfianWorkload(())
        with pytest.raises(ValueError):
            ZipfianWorkload(TASKS, max_query_size=0)
        with pytest.raises(ValueError):
            ZipfianWorkload(TASKS, transports=())
        with pytest.raises(ValueError):
            ZipfianWorkload(TASKS, universe_size=0)

    def test_every_size_represented_in_small_universe(self):
        # 5 size-1 combos drown in 10+10 larger ones; stratification must
        # still surface each size within a tiny universe.
        workload = ZipfianWorkload(TASKS, max_query_size=3, universe_size=6)
        sizes = {len(q) for q in workload.queries}
        assert sizes == {1, 2, 3}


@pytest.fixture()
def pool_workload(named_pool):
    pool, _, _ = named_pool
    workload = ZipfianWorkload(
        pool.expert_names(), max_query_size=2, skew=1.1, universe_size=6, seed=9
    )
    return pool, workload


class TestClosedLoop:
    def test_report_shape_and_counts(self, pool_workload):
        pool, workload = pool_workload
        with ServingGateway(pool) as gateway:
            report = run_closed_loop(
                gateway, workload, clients=3, requests_per_client=8, seed=1
            )
        assert report.mode == "closed-loop"
        assert report.requests == 24
        assert report.errors == 0
        assert report.throughput_qps > 0
        for field in ("mean", "p50", "p95", "p99", "max"):
            assert report.latency[field] >= 0.0
        assert report.latency["p50"] <= report.latency["p99"]
        assert 0.0 <= report.payload_hit_rate <= 1.0

    def test_caching_shows_up_in_hit_rate(self, pool_workload):
        pool, workload = pool_workload
        with ServingGateway(pool) as gateway:
            run_closed_loop(gateway, workload, clients=2, requests_per_client=20, seed=2)
            assert gateway.payload_cache.stats().hit_rate > 0.3

    def test_hit_rates_are_per_run_not_lifetime(self, pool_workload):
        """A warm gateway must report the run's own hit rate, not history."""
        pool, workload = pool_workload
        with ServingGateway(pool) as gateway:
            for tasks, transport in workload.sample(30, seed=11):
                gateway.serve(tasks, transport)  # prime every hot query
            report = run_closed_loop(
                gateway, workload, clients=2, requests_per_client=15, seed=12
            )
        lifetime = gateway.payload_cache.stats().hit_rate
        # the measured run is ~all hits; lifetime includes the cold priming
        assert report.payload_hit_rate > lifetime
        assert report.payload_hit_rate > 0.9

    def test_render_contains_headlines(self, pool_workload):
        pool, workload = pool_workload
        with ServingGateway(pool) as gateway:
            report = run_closed_loop(
                gateway, workload, clients=2, requests_per_client=4, seed=3
            )
        text = report.render()
        assert "qps" in text and "p95" in text and "hit_rate" in text


class TestOpenLoop:
    def test_open_loop_reports_offered_rate(self, pool_workload):
        pool, workload = pool_workload
        with ServingGateway(pool, GatewayConfig(max_workers=4)) as gateway:
            report = run_open_loop(
                gateway, workload, rate_qps=50, duration_seconds=0.4, seed=5
            )
        assert report.mode == "open-loop"
        assert report.offered_qps == 50
        assert report.requests + report.errors == 20
        assert report.errors == 0
        assert report.latency["p50"] >= 0.0

    def test_invalid_rate_rejected(self, pool_workload):
        pool, workload = pool_workload
        with ServingGateway(pool) as gateway:
            with pytest.raises(ValueError):
                run_open_loop(gateway, workload, rate_qps=0)
