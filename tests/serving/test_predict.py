"""The prediction serving tier: trunk cache, fused path, micro-batching."""

import threading

import numpy as np
import pytest

from repro.core.features import TrunkFeatureCache, array_digest
from repro.serving import GatewayConfig, ServingGateway
from tests.conftest import assert_fused_ids_match


@pytest.fixture()
def gateway(named_pool):
    pool, _, _ = named_pool
    with ServingGateway(pool, GatewayConfig(max_workers=2)) as gw:
        yield gw


class TestArrayDigest:
    def test_same_content_same_digest(self, rng):
        a = rng.standard_normal((4, 3, 6, 6)).astype(np.float32)
        assert array_digest(a) == array_digest(a.copy())

    def test_same_shape_different_content_differs(self, rng):
        """The regression the digest key exists for: same row count, new data."""
        a = rng.standard_normal((4, 3, 6, 6)).astype(np.float32)
        b = rng.standard_normal((4, 3, 6, 6)).astype(np.float32)
        assert array_digest(a) != array_digest(b)

    def test_shape_and_dtype_participate(self, rng):
        a = rng.standard_normal((6, 4)).astype(np.float32)
        assert array_digest(a) != array_digest(a.reshape(4, 6))
        assert array_digest(a) != array_digest(a.astype(np.float64))


class TestTrunkFeatureCache:
    def test_put_get_roundtrip(self, rng):
        cache = TrunkFeatureCache(1 << 20)
        feats = rng.standard_normal((8, 16, 3, 3)).astype(np.float32)
        assert cache.put("k", feats)
        assert cache.get("k") is feats

    def test_zero_budget_disables(self, rng):
        cache = TrunkFeatureCache(0)
        feats = rng.standard_normal((2, 4, 3, 3)).astype(np.float32)
        assert not cache.put("k", feats)
        assert cache.get("k") is None


class TestPredict:
    def test_ids_match_reference_model(self, gateway, named_pool):
        pool, data, _ = named_pool
        x = data.test.images[:20]
        response = gateway.predict(x, ["pets", "birds"])
        model = gateway.get_model(["pets", "birds"])
        assert_fused_ids_match(response.class_ids, model.logits(x), model.classes)
        assert response.tasks == ("birds", "pets")  # canonical order
        assert response.batch_size == 20

    def test_trunk_cache_hits_on_repeat(self, gateway, named_pool):
        _, data, _ = named_pool
        x = data.test.images[:10]
        cold = gateway.predict(x, ["pets"])
        warm = gateway.predict(x, ["pets", "fish"])  # other composite, same trunk
        assert not cold.trunk_cache_hit
        assert warm.trunk_cache_hit  # features reused *across* composites
        assert gateway.cache_stats()["trunk"].hits >= 1

    def test_same_row_count_different_images_recomputes(self, gateway, named_pool):
        """Digest keying: a new batch with the same shape must not hit."""
        _, data, _ = named_pool
        first, second = data.test.images[:10], data.test.images[10:20]
        gateway.predict(first, ["pets"])
        response = gateway.predict(second, ["pets"])
        assert not response.trunk_cache_hit
        # and its ids are correct for the *second* batch
        model = gateway.get_model(["pets"])
        assert_fused_ids_match(response.class_ids, model.logits(second), model.classes)

    def test_reextraction_invalidates_fused_model(self, tiny_hierarchy):
        """Version bump → cached model dropped → fresh bank serves new weights."""
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=5, train_per_class=15)
        name = sorted(pool.expert_names())[0]
        query = sorted(pool.expert_names())[:2]
        x = data.test.images[:12]
        with ServingGateway(pool) as gw:
            gw.predict(x, query)
            assert len(gw.model_cache) == 1
            pool.extract_expert(name, data.train.images)
            assert len(gw.model_cache) == 0  # listener dropped the model
            response = gw.predict(x, query)
            network, composite = pool.consolidate(query)
            from repro.distill import batched_forward

            assert_fused_ids_match(
                response.class_ids, batched_forward(network, x), composite.classes
            )

    def test_library_reextraction_clears_trunk_and_model_caches(self, tiny_hierarchy):
        """A trunk swap invalidates features and models, not just experts."""
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=6, train_per_class=15)
        query = sorted(pool.expert_names())[:2]
        x = data.test.images[:10]
        with ServingGateway(pool) as gw:
            gw.predict(x, query)
            assert len(gw.trunk_cache) == 1 and len(gw.model_cache) == 1
            pool.extract_library(data.train.images)  # new frozen trunk
            assert len(gw.trunk_cache) == 0 and len(gw.model_cache) == 0
            # old experts still attach to the pool; a fresh predict runs
            # the *new* trunk and matches the new reference end to end
            response = gw.predict(x, query)
            assert not response.trunk_cache_hit
            network, composite = pool.consolidate(query)
            from repro.distill import batched_forward

            assert_fused_ids_match(
                response.class_ids, batched_forward(network, x), composite.classes
            )

    def test_unknown_task_raises_and_counts(self, gateway):
        with pytest.raises(KeyError):
            gateway.predict(np.zeros((2, 3, 6, 6), dtype=np.float32), ["dragons"])
        assert gateway.metrics.counter("errors") == 1

    def test_stage_metrics_recorded(self, gateway, named_pool):
        _, data, _ = named_pool
        gateway.predict(data.test.images[:6], ["pets"])
        stages = gateway.metrics.snapshot()["stages"]
        for stage in (
            "predict_trunk_fused",
            "predict_heads",
            "predict_argmax",
            "predict_total",
        ):
            assert stage in stages, stage
        # the compiled trunk ran — the autograd fallback never fired
        assert "predict_trunk" not in stages
        assert gateway.metrics.counter("fused_trunk_fallback") == 0


class TestMicroBatching:
    def test_submit_matches_sequential(self, named_pool):
        """Micro-batched futures return the same ids as sequential predicts."""
        pool, data, _ = named_pool
        queries = [
            (data.test.images[i * 5 : (i + 1) * 5], ["pets"] if i % 2 else ["pets", "birds"])
            for i in range(4)
        ]
        with ServingGateway(pool, GatewayConfig(max_workers=2)) as gw:
            sequential = [gw.predict(x, tasks).class_ids for x, tasks in queries]
        with ServingGateway(pool, GatewayConfig(max_workers=2)) as gw:
            futures = [gw.submit_predict(x, tasks) for x, tasks in queries]
            batched = [f.result(timeout=30).class_ids for f in futures]
        for seq, bat in zip(sequential, batched):
            assert np.array_equal(seq, bat)

    def test_concurrent_requests_share_one_trunk_forward(self, named_pool):
        """Requests enqueued while the worker is blocked drain as ONE batch."""
        pool, data, _ = named_pool
        release = threading.Event()
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            # occupy the single worker so submissions pile up behind it
            blocker = gw._ensure_executor().submit(release.wait)
            futures = [
                gw.submit_predict(data.test.images[i * 4 : (i + 1) * 4], ["fish"])
                for i in range(4)
            ]
            release.set()
            results = [f.result(timeout=30) for f in futures]
            blocker.result(timeout=30)
            assert gw.metrics.counter("predict_batches") == 1
            assert gw.metrics.counter("predict_coalesced") == 3
            assert all(r.coalesced for r in results)
            # the drain ran the trunk once over the union of images
            assert gw.metrics.snapshot()["stages"]["predict_trunk_fused"]["count"] == 1
        model_net, composite = pool.consolidate(["fish"])
        from repro.distill import batched_forward

        for i, result in enumerate(results):
            x = data.test.images[i * 4 : (i + 1) * 4]
            assert_fused_ids_match(
                result.class_ids, batched_forward(model_net, x), composite.classes
            )

    def test_identical_batches_deduped_within_drain(self, named_pool):
        """Byte-identical images in one micro-batch share one trunk slice."""
        pool, data, _ = named_pool
        same = data.test.images[:6]
        other = data.test.images[6:12]
        release = threading.Event()
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            blocker = gw._ensure_executor().submit(release.wait)
            futures = [
                gw.submit_predict(same, ["pets"]),
                gw.submit_predict(same.copy(), ["birds"]),  # same bytes, new array
                gw.submit_predict(other, ["pets"]),
            ]
            release.set()
            results = [f.result(timeout=30) for f in futures]
            blocker.result(timeout=30)
            # 3 requests, 2 distinct contents: exactly 2 feature insertions
            assert gw.trunk_cache.stats().insertions == 2
            assert gw.metrics.counter("predict_batches") == 1
        for result, (x, tasks) in zip(
            results, [(same, ["pets"]), (same, ["birds"]), (other, ["pets"])]
        ):
            network, composite = pool.consolidate(sorted(tasks))
            from repro.distill import batched_forward

            assert_fused_ids_match(
                result.class_ids, batched_forward(network, x), composite.classes
            )

    def test_submit_predict_error_isolated_to_its_future(self, named_pool):
        pool, data, _ = named_pool
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            release = threading.Event()
            blocker = gw._ensure_executor().submit(release.wait)
            good = gw.submit_predict(data.test.images[:4], ["pets"])
            bad = gw.submit_predict(data.test.images[:4], ["dragons"])
            release.set()
            assert good.result(timeout=30).tasks == ("pets",)
            with pytest.raises(KeyError):
                bad.result(timeout=30)
            blocker.result(timeout=30)


class TestAdaptiveMicroBatching:
    def _blocked_gateway(self, pool, **config_kwargs):
        gw = ServingGateway(
            pool, GatewayConfig(max_workers=1, **config_kwargs)
        )
        release = threading.Event()
        blocker = gw._ensure_executor().submit(release.wait)
        return gw, release, blocker

    def test_drains_capped_at_max_batch_images(self, named_pool):
        """No drain gathers more images than max_batch_images."""
        pool, data, _ = named_pool
        gw, release, blocker = self._blocked_gateway(
            pool, min_batch_images=8, max_batch_images=8
        )
        with gw:
            futures = [
                gw.submit_predict(data.test.images[i * 4 : (i + 1) * 4], ["fish"])
                for i in range(4)  # 16 images against an 8-image cap
            ]
            release.set()
            results = [f.result(timeout=30) for f in futures]
            blocker.result(timeout=30)
            assert gw.metrics.counter("predict_batches") >= 2
            drain_sizes = gw.metrics.snapshot()["stages"]["predict_drain_images"]
            assert drain_sizes["max"] <= 8
        network, composite = pool.consolidate(["fish"])
        from repro.distill import batched_forward

        for i, result in enumerate(results):
            x = data.test.images[i * 4 : (i + 1) * 4]
            assert_fused_ids_match(
                result.class_ids, batched_forward(network, x), composite.classes
            )

    def test_window_grows_under_load(self, named_pool):
        """A drain that leaves a backlog doubles the window (up to the cap)."""
        pool, data, _ = named_pool
        gw, release, blocker = self._blocked_gateway(
            pool, min_batch_images=4, max_batch_images=64
        )
        with gw:
            assert gw.predict_window == 4
            futures = [
                gw.submit_predict(data.test.images[i * 4 : (i + 1) * 4], ["pets"])
                for i in range(3)  # 12 images > 4-image window -> backlog
            ]
            release.set()
            for f in futures:
                f.result(timeout=30)
            blocker.result(timeout=30)
            assert gw.predict_window > 4

    def test_window_shrinks_when_idle(self, named_pool):
        """Light drains halve the window back toward min_batch_images."""
        pool, data, _ = named_pool
        with ServingGateway(
            pool,
            GatewayConfig(max_workers=1, min_batch_images=4, max_batch_images=64),
        ) as gw:
            with gw._predict_lock:
                gw._predict_window = 64  # as if a burst just ended
            for _ in range(4):  # lone 2-image requests: idle traffic
                gw.submit_predict(data.test.images[:2], ["pets"]).result(timeout=30)
            assert gw.predict_window == 4

    def test_oversized_request_still_served_whole(self, named_pool):
        """A single request larger than the cap cannot be split — it drains alone."""
        pool, data, _ = named_pool
        with ServingGateway(
            pool,
            GatewayConfig(max_workers=1, min_batch_images=4, max_batch_images=4),
        ) as gw:
            response = gw.submit_predict(data.test.images[:12], ["pets"]).result(
                timeout=30
            )
            assert response.batch_size == 12

    def test_config_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="max_batch_images"):
            GatewayConfig(min_batch_images=128, max_batch_images=8)


class TestResultCache:
    def test_repeat_request_skips_even_the_heads(self, named_pool):
        pool, data, _ = named_pool
        x = data.test.images[:10]
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            cold = gw.predict(x, ["pets", "birds"])
            heads_runs = gw.metrics.snapshot()["stages"]["predict_heads"]["count"]
            warm = gw.predict(x, ["pets", "birds"])
            assert not cold.result_cache_hit
            assert warm.result_cache_hit and not warm.trunk_cache_hit
            assert np.array_equal(cold.class_ids, warm.class_ids)
            # the fused heads did not run again for the repeat
            assert (
                gw.metrics.snapshot()["stages"]["predict_heads"]["count"]
                == heads_runs
            )
            assert gw.metrics.counter("predict_result_hits") == 1
            assert gw.cache_stats()["result"].hits == 1

    def test_different_images_or_tasks_miss(self, named_pool):
        pool, data, _ = named_pool
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            gw.predict(data.test.images[:10], ["pets"])
            other_images = gw.predict(data.test.images[10:20], ["pets"])
            other_tasks = gw.predict(data.test.images[:10], ["pets", "fish"])
            assert not other_images.result_cache_hit
            assert not other_tasks.result_cache_hit

    def test_version_bump_evicts_eagerly_and_recomputes(self, tiny_hierarchy):
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=8, train_per_class=15)
        name = sorted(pool.expert_names())[0]
        query = sorted(pool.expert_names())[:2]
        x = data.test.images[:8]
        with ServingGateway(pool) as gw:
            gw.predict(x, query)
            assert len(gw.result_cache) == 1
            pool.extract_expert(name, data.train.images)
            assert len(gw.result_cache) == 0  # listener released the bytes
            response = gw.predict(x, query)
            assert not response.result_cache_hit
            network, composite = pool.consolidate(query)
            from repro.distill import batched_forward

            assert_fused_ids_match(
                response.class_ids, batched_forward(network, x), composite.classes
            )

    def test_library_bump_clears_results(self, tiny_hierarchy):
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=10, train_per_class=15)
        query = sorted(pool.expert_names())[:2]
        with ServingGateway(pool) as gw:
            gw.predict(data.test.images[:8], query)
            assert len(gw.result_cache) == 1
            pool.extract_library(data.train.images)
            assert len(gw.result_cache) == 0

    def test_zero_budget_disables(self, named_pool):
        pool, data, _ = named_pool
        x = data.test.images[:10]
        with ServingGateway(
            pool, GatewayConfig(max_workers=1, result_cache_bytes=0)
        ) as gw:
            first = gw.predict(x, ["pets"])
            second = gw.predict(x, ["pets"])
            assert not first.result_cache_hit and not second.result_cache_hit
            assert second.trunk_cache_hit  # the feature tier still works
            assert np.array_equal(first.class_ids, second.class_ids)

    def test_micro_batched_repeat_hits_result_cache(self, named_pool):
        """A drained request whose answer is cached resolves without trunk work."""
        pool, data, _ = named_pool
        x = data.test.images[:6]
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            gw.predict(x, ["pets"])
            trunk_runs = gw.metrics.snapshot()["stages"]["predict_trunk_fused"]["count"]
            response = gw.submit_predict(x, ["pets"]).result(timeout=30)
            assert response.result_cache_hit
            assert (
                gw.metrics.snapshot()["stages"]["predict_trunk_fused"]["count"]
                == trunk_runs
            )
            # the drain's presence peek is stats-neutral: exactly one
            # counted lookup per request (1 miss inline, 1 hit drained)
            stats = gw.cache_stats()["result"]
            assert stats.hits == 1 and stats.misses == 1
