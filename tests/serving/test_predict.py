"""The prediction serving tier: trunk cache, fused path, micro-batching."""

import threading

import numpy as np
import pytest

from repro.core.features import TrunkFeatureCache, array_digest
from repro.serving import GatewayConfig, ServingGateway
from tests.conftest import assert_fused_ids_match


@pytest.fixture()
def gateway(named_pool):
    pool, _, _ = named_pool
    with ServingGateway(pool, GatewayConfig(max_workers=2)) as gw:
        yield gw


class TestArrayDigest:
    def test_same_content_same_digest(self, rng):
        a = rng.standard_normal((4, 3, 6, 6)).astype(np.float32)
        assert array_digest(a) == array_digest(a.copy())

    def test_same_shape_different_content_differs(self, rng):
        """The regression the digest key exists for: same row count, new data."""
        a = rng.standard_normal((4, 3, 6, 6)).astype(np.float32)
        b = rng.standard_normal((4, 3, 6, 6)).astype(np.float32)
        assert array_digest(a) != array_digest(b)

    def test_shape_and_dtype_participate(self, rng):
        a = rng.standard_normal((6, 4)).astype(np.float32)
        assert array_digest(a) != array_digest(a.reshape(4, 6))
        assert array_digest(a) != array_digest(a.astype(np.float64))


class TestTrunkFeatureCache:
    def test_put_get_roundtrip(self, rng):
        cache = TrunkFeatureCache(1 << 20)
        feats = rng.standard_normal((8, 16, 3, 3)).astype(np.float32)
        assert cache.put("k", feats)
        assert cache.get("k") is feats

    def test_zero_budget_disables(self, rng):
        cache = TrunkFeatureCache(0)
        feats = rng.standard_normal((2, 4, 3, 3)).astype(np.float32)
        assert not cache.put("k", feats)
        assert cache.get("k") is None


class TestPredict:
    def test_ids_match_reference_model(self, gateway, named_pool):
        pool, data, _ = named_pool
        x = data.test.images[:20]
        response = gateway.predict(x, ["pets", "birds"])
        model = gateway.get_model(["pets", "birds"])
        assert_fused_ids_match(response.class_ids, model.logits(x), model.classes)
        assert response.tasks == ("birds", "pets")  # canonical order
        assert response.batch_size == 20

    def test_trunk_cache_hits_on_repeat(self, gateway, named_pool):
        _, data, _ = named_pool
        x = data.test.images[:10]
        cold = gateway.predict(x, ["pets"])
        warm = gateway.predict(x, ["pets", "fish"])  # other composite, same trunk
        assert not cold.trunk_cache_hit
        assert warm.trunk_cache_hit  # features reused *across* composites
        assert gateway.cache_stats()["trunk"].hits >= 1

    def test_same_row_count_different_images_recomputes(self, gateway, named_pool):
        """Digest keying: a new batch with the same shape must not hit."""
        _, data, _ = named_pool
        first, second = data.test.images[:10], data.test.images[10:20]
        gateway.predict(first, ["pets"])
        response = gateway.predict(second, ["pets"])
        assert not response.trunk_cache_hit
        # and its ids are correct for the *second* batch
        model = gateway.get_model(["pets"])
        assert_fused_ids_match(response.class_ids, model.logits(second), model.classes)

    def test_reextraction_invalidates_fused_model(self, tiny_hierarchy):
        """Version bump → cached model dropped → fresh bank serves new weights."""
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=5, train_per_class=15)
        name = sorted(pool.expert_names())[0]
        query = sorted(pool.expert_names())[:2]
        x = data.test.images[:12]
        with ServingGateway(pool) as gw:
            gw.predict(x, query)
            assert len(gw.model_cache) == 1
            pool.extract_expert(name, data.train.images)
            assert len(gw.model_cache) == 0  # listener dropped the model
            response = gw.predict(x, query)
            network, composite = pool.consolidate(query)
            from repro.distill import batched_forward

            assert_fused_ids_match(
                response.class_ids, batched_forward(network, x), composite.classes
            )

    def test_library_reextraction_clears_trunk_and_model_caches(self, tiny_hierarchy):
        """A trunk swap invalidates features and models, not just experts."""
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=6, train_per_class=15)
        query = sorted(pool.expert_names())[:2]
        x = data.test.images[:10]
        with ServingGateway(pool) as gw:
            gw.predict(x, query)
            assert len(gw.trunk_cache) == 1 and len(gw.model_cache) == 1
            pool.extract_library(data.train.images)  # new frozen trunk
            assert len(gw.trunk_cache) == 0 and len(gw.model_cache) == 0
            # old experts still attach to the pool; a fresh predict runs
            # the *new* trunk and matches the new reference end to end
            response = gw.predict(x, query)
            assert not response.trunk_cache_hit
            network, composite = pool.consolidate(query)
            from repro.distill import batched_forward

            assert_fused_ids_match(
                response.class_ids, batched_forward(network, x), composite.classes
            )

    def test_unknown_task_raises_and_counts(self, gateway):
        with pytest.raises(KeyError):
            gateway.predict(np.zeros((2, 3, 6, 6), dtype=np.float32), ["dragons"])
        assert gateway.metrics.counter("errors") == 1

    def test_stage_metrics_recorded(self, gateway, named_pool):
        _, data, _ = named_pool
        gateway.predict(data.test.images[:6], ["pets"])
        stages = gateway.metrics.snapshot()["stages"]
        for stage in ("predict_trunk", "predict_heads", "predict_argmax", "predict_total"):
            assert stage in stages, stage


class TestMicroBatching:
    def test_submit_matches_sequential(self, named_pool):
        """Micro-batched futures return the same ids as sequential predicts."""
        pool, data, _ = named_pool
        queries = [
            (data.test.images[i * 5 : (i + 1) * 5], ["pets"] if i % 2 else ["pets", "birds"])
            for i in range(4)
        ]
        with ServingGateway(pool, GatewayConfig(max_workers=2)) as gw:
            sequential = [gw.predict(x, tasks).class_ids for x, tasks in queries]
        with ServingGateway(pool, GatewayConfig(max_workers=2)) as gw:
            futures = [gw.submit_predict(x, tasks) for x, tasks in queries]
            batched = [f.result(timeout=30).class_ids for f in futures]
        for seq, bat in zip(sequential, batched):
            assert np.array_equal(seq, bat)

    def test_concurrent_requests_share_one_trunk_forward(self, named_pool):
        """Requests enqueued while the worker is blocked drain as ONE batch."""
        pool, data, _ = named_pool
        release = threading.Event()
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            # occupy the single worker so submissions pile up behind it
            blocker = gw._ensure_executor().submit(release.wait)
            futures = [
                gw.submit_predict(data.test.images[i * 4 : (i + 1) * 4], ["fish"])
                for i in range(4)
            ]
            release.set()
            results = [f.result(timeout=30) for f in futures]
            blocker.result(timeout=30)
            assert gw.metrics.counter("predict_batches") == 1
            assert gw.metrics.counter("predict_coalesced") == 3
            assert all(r.coalesced for r in results)
            # the drain ran the trunk once over the union of images
            assert gw.metrics.snapshot()["stages"]["predict_trunk"]["count"] == 1
        model_net, composite = pool.consolidate(["fish"])
        from repro.distill import batched_forward

        for i, result in enumerate(results):
            x = data.test.images[i * 4 : (i + 1) * 4]
            assert_fused_ids_match(
                result.class_ids, batched_forward(model_net, x), composite.classes
            )

    def test_identical_batches_deduped_within_drain(self, named_pool):
        """Byte-identical images in one micro-batch share one trunk slice."""
        pool, data, _ = named_pool
        same = data.test.images[:6]
        other = data.test.images[6:12]
        release = threading.Event()
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            blocker = gw._ensure_executor().submit(release.wait)
            futures = [
                gw.submit_predict(same, ["pets"]),
                gw.submit_predict(same.copy(), ["birds"]),  # same bytes, new array
                gw.submit_predict(other, ["pets"]),
            ]
            release.set()
            results = [f.result(timeout=30) for f in futures]
            blocker.result(timeout=30)
            # 3 requests, 2 distinct contents: exactly 2 feature insertions
            assert gw.trunk_cache.stats().insertions == 2
            assert gw.metrics.counter("predict_batches") == 1
        for result, (x, tasks) in zip(
            results, [(same, ["pets"]), (same, ["birds"]), (other, ["pets"])]
        ):
            network, composite = pool.consolidate(sorted(tasks))
            from repro.distill import batched_forward

            assert_fused_ids_match(
                result.class_ids, batched_forward(network, x), composite.classes
            )

    def test_submit_predict_error_isolated_to_its_future(self, named_pool):
        pool, data, _ = named_pool
        with ServingGateway(pool, GatewayConfig(max_workers=1)) as gw:
            release = threading.Event()
            blocker = gw._ensure_executor().submit(release.wait)
            good = gw.submit_predict(data.test.images[:4], ["pets"])
            bad = gw.submit_predict(data.test.images[:4], ["dragons"])
            release.set()
            assert good.result(timeout=30).tasks == ("pets",)
            with pytest.raises(KeyError):
                bad.result(timeout=30)
            blocker.result(timeout=30)
