"""ByteBudgetLRU: byte accounting, LRU order, TTL, stats, thread safety."""

import threading

import pytest

from repro.serving import ByteBudgetLRU


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBasics:
    def test_get_miss_returns_default(self):
        cache = ByteBudgetLRU(100)
        assert cache.get("missing") is None
        assert cache.get("missing", default=42) == 42

    def test_put_then_get(self):
        cache = ByteBudgetLRU(100)
        assert cache.put("k", "v", 10)
        assert cache.get("k") == "v"

    def test_replacing_updates_bytes(self):
        cache = ByteBudgetLRU(100)
        cache.put("k", "a", 60)
        cache.put("k", "b", 20)
        stats = cache.stats()
        assert stats.current_bytes == 20
        assert stats.current_entries == 1
        assert cache.get("k") == "b"

    def test_discard_and_clear(self):
        cache = ByteBudgetLRU(100)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        assert cache.discard("a")
        assert not cache.discard("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().current_bytes == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ByteBudgetLRU(-1)


class TestEviction:
    def test_evicts_lru_when_over_budget(self):
        cache = ByteBudgetLRU(100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        cache.put("c", 3, 40)  # pushes total to 120 -> evict "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = ByteBudgetLRU(100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        cache.get("a")  # now "b" is LRU
        cache.put("c", 3, 40)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_oversized_value_rejected_not_cached(self):
        cache = ByteBudgetLRU(100)
        assert not cache.put("huge", "x", 101)
        assert cache.get("huge") is None
        assert cache.stats().rejections == 1

    def test_zero_budget_disables_cache(self):
        cache = ByteBudgetLRU(0)
        assert not cache.put("k", "v", 1)
        assert not cache.put("empty", "v", 0)  # even 0-byte values are rejected
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 1 and stats.rejections == 2


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = ByteBudgetLRU(100, ttl_seconds=10, clock=clock)
        cache.put("k", "v", 1)
        clock.advance(9)
        assert cache.get("k") == "v"
        clock.advance(2)  # now 11s since (re-put refreshed? no: stored_at fixed)
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.current_entries == 0

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = ByteBudgetLRU(100, ttl_seconds=10, clock=clock)
        cache.put("k", "v1", 1)
        clock.advance(8)
        cache.put("k", "v2", 1)
        clock.advance(8)
        assert cache.get("k") == "v2"

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            ByteBudgetLRU(100, ttl_seconds=0)


class TestStats:
    def test_hit_rate(self):
        cache = ByteBudgetLRU(100)
        cache.put("k", "v", 1)
        cache.get("k")
        cache.get("k")
        cache.get("nope")
        stats = cache.stats()
        assert stats.hits == 2 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_without_traffic_is_zero(self):
        assert ByteBudgetLRU(10).stats().hit_rate == 0.0

    def test_reset_stats_keeps_contents(self):
        cache = ByteBudgetLRU(100)
        cache.put("k", "v", 1)
        cache.get("k")
        cache.reset_stats()
        stats = cache.stats()
        assert stats.hits == 0 and stats.insertions == 0
        assert cache.get("k") == "v"

    def test_keys_in_lru_order(self):
        cache = ByteBudgetLRU(100)
        cache.put("a", 1, 1)
        cache.put("b", 2, 1)
        cache.get("a")
        assert cache.keys() == ["b", "a"]


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = ByteBudgetLRU(512)
        errors = []

        def worker(tid):
            try:
                for i in range(300):
                    key = (tid + i) % 24
                    cache.put(key, i, 32)
                    cache.get(key)
                    if i % 50 == 0:
                        cache.discard(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.current_bytes <= 512
        assert stats.current_entries == len(cache.keys())


class TestContains:
    def test_contains_is_stats_neutral(self):
        from repro.serving.cache import ByteBudgetLRU

        cache = ByteBudgetLRU(1 << 10)
        cache.put("k", b"v", 1)
        assert cache.contains("k")
        assert not cache.contains("missing")
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0  # peeks counted nothing

    def test_contains_respects_ttl(self):
        from repro.serving.cache import ByteBudgetLRU

        now = [0.0]
        cache = ByteBudgetLRU(1 << 10, ttl_seconds=5.0, clock=lambda: now[0])
        cache.put("k", b"v", 1)
        assert cache.contains("k")
        now[0] = 10.0
        assert not cache.contains("k")
