"""Serialization round-trips: payload bytes must reconstruct the exact model.

float32 transport must be bit-exact; uint8 transport must equal the
quantize→dequantize of the original weights (the only loss allowed is the
affine quantization itself).
"""

import numpy as np
import pytest

from repro.compress import dequantize_tensor, quantize_tensor
from repro.core import deserialize_task_model, serialize_task_model


def _flat_states(network):
    """(prefix, state_dict) pairs in the same layout the payload uses."""
    yield "library", network.trunk.state_dict()
    for name, head in zip(network.head_names, network.heads):
        yield f"expert:{name}", head.state_dict()


class TestFloat32Roundtrip:
    def test_states_bit_exact(self, named_pool):
        pool, _, _ = named_pool
        network, composite = pool.consolidate(["pets", "birds"])
        payload = serialize_task_model(network, composite, pool.config, "float32")
        rebuilt = deserialize_task_model(payload)
        for (_, original), (_, restored) in zip(
            _flat_states(network), _flat_states(rebuilt.network)
        ):
            assert set(original) == set(restored)
            for key in original:
                assert np.array_equal(
                    np.asarray(original[key]), np.asarray(restored[key])
                ), key

    def test_logits_bit_exact(self, named_pool):
        pool, data, _ = named_pool
        network, composite = pool.consolidate(["fish"])
        payload = serialize_task_model(network, composite, pool.config, "float32")
        rebuilt = deserialize_task_model(payload)
        x = data.test.images[:12]
        from repro.distill import batched_forward

        assert np.allclose(rebuilt.logits(x), batched_forward(network, x), atol=1e-6)

    def test_composite_metadata_travels(self, named_pool):
        pool, _, _ = named_pool
        network, composite = pool.consolidate(["birds", "pets"])
        rebuilt = deserialize_task_model(
            serialize_task_model(network, composite, pool.config, "float32")
        )
        assert rebuilt.task.names == composite.names
        assert rebuilt.task.classes == composite.classes
        assert rebuilt.class_names == tuple(
            n for t in composite.tasks for n in t.class_names
        )


class TestRawZlibRoundtrip:
    def test_states_bit_exact(self, named_pool):
        """raw+zlib is a container change, not a precision change."""
        pool, _, _ = named_pool
        network, composite = pool.consolidate(["pets", "birds"])
        payload = serialize_task_model(network, composite, pool.config, "raw+zlib")
        rebuilt = deserialize_task_model(payload)
        for (_, original), (_, restored) in zip(
            _flat_states(network), _flat_states(rebuilt.network)
        ):
            assert set(original) == set(restored)
            for key in original:
                assert np.array_equal(
                    np.asarray(original[key]), np.asarray(restored[key])
                ), key

    def test_flat_container_not_npz(self, named_pool):
        pool, _, _ = named_pool
        network, composite = pool.consolidate(["fish"])
        flat = serialize_task_model(network, composite, pool.config, "raw+zlib")
        npz = serialize_task_model(network, composite, pool.config, "float32")
        assert flat[:4] == b"POEZ"
        assert npz[:2] == b"PK"  # zip container
        # same information, different container: sizes are comparable
        assert len(flat) < 2 * len(npz)

    def test_metadata_travels(self, named_pool):
        pool, _, _ = named_pool
        network, composite = pool.consolidate(["birds", "pets"])
        rebuilt = deserialize_task_model(
            serialize_task_model(network, composite, pool.config, "raw+zlib")
        )
        assert rebuilt.task.names == composite.names
        assert rebuilt.task.classes == composite.classes


class TestZstdRoundtrip:
    def test_states_bit_exact_with_or_without_zstandard(self, named_pool):
        """zstd is a container/compressor change, not a precision change.

        With the ``zstandard`` module absent the encoder falls back to
        zlib compression (recorded in the header); either way the bytes
        must reconstruct the exact model.
        """
        pool, _, _ = named_pool
        network, composite = pool.consolidate(["pets", "birds"])
        payload = serialize_task_model(network, composite, pool.config, "zstd")
        rebuilt = deserialize_task_model(payload)
        for (_, original), (_, restored) in zip(
            _flat_states(network), _flat_states(rebuilt.network)
        ):
            assert set(original) == set(restored)
            for key in original:
                assert np.array_equal(
                    np.asarray(original[key]), np.asarray(restored[key])
                ), key

    def test_header_records_codec_actually_used(self, named_pool):
        import json
        import struct

        from repro.core import server as server_mod

        pool, _, _ = named_pool
        network, composite = pool.consolidate(["fish"])
        payload = serialize_task_model(network, composite, pool.config, "zstd")
        assert payload[:4] == b"POEZ"
        (header_len,) = struct.unpack_from("<I", payload, 4)
        header = json.loads(payload[8 : 8 + header_len].decode())
        expected = "zlib" if server_mod._zstandard is None else "zstd"
        assert header["codec"] == expected

    def test_zlib_fallback_when_module_absent(self, named_pool, monkeypatch):
        """Force the no-zstandard path: encode and decode must still work."""
        from repro.core import server as server_mod

        monkeypatch.setattr(server_mod, "_zstandard", None)
        pool, data, _ = named_pool
        network, composite = pool.consolidate(["fish"])
        payload = serialize_task_model(network, composite, pool.config, "zstd")
        rebuilt = deserialize_task_model(payload)
        x = data.test.images[:8]
        from repro.distill import batched_forward

        assert np.array_equal(rebuilt.logits(x), batched_forward(network, x))

    def test_zstd_listed_in_transports(self):
        from repro.core import TRANSPORTS

        assert "zstd" in TRANSPORTS


class TestUint8Roundtrip:
    def test_states_equal_quant_dequant(self, named_pool):
        """uint8 transport loses exactly the quantization error, nothing more."""
        pool, _, _ = named_pool
        network, composite = pool.consolidate(["pets", "fish"])
        payload = serialize_task_model(network, composite, pool.config, "uint8")
        rebuilt = deserialize_task_model(payload)
        for (_, original), (_, restored) in zip(
            _flat_states(network), _flat_states(rebuilt.network)
        ):
            for key in original:
                reference = dequantize_tensor(quantize_tensor(np.asarray(original[key])))
                assert np.allclose(
                    np.asarray(restored[key]), reference, atol=1e-7
                ), key

    def test_second_roundtrip_is_stable(self, named_pool):
        """Quantization error must not compound: ship(ship(M)) == ship(M)."""
        pool, data, _ = named_pool
        network, composite = pool.consolidate(["birds"])
        once = deserialize_task_model(
            serialize_task_model(network, composite, pool.config, "uint8")
        )
        twice = deserialize_task_model(
            serialize_task_model(once.network, once.task, pool.config, "uint8")
        )
        x = data.test.images[:10]
        assert np.allclose(once.logits(x), twice.logits(x), atol=1e-4)

    def test_unknown_transport_rejected_by_gateway(self, named_pool):
        from repro.core import ModelQueryRequest

        with pytest.raises(ValueError):
            ModelQueryRequest(tasks=("pets",), transport="float16")
