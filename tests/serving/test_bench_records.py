"""Benchmark trajectory files: metadata stamping and back-compat."""

import json

from repro.serving import append_benchmark_record, run_metadata


class TestRunMetadata:
    def test_stamp_fields(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_RELAX", raising=False)
        meta = run_metadata()
        assert meta["cpu_count"] >= 1
        assert meta["relax"] is False
        assert "T" in meta["timestamp"]  # ISO-8601 with a time part
        assert meta["python"].count(".") == 2

    def test_relax_flag_reflected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RELAX", "1")
        assert run_metadata()["relax"] is True


class TestAppendBenchmarkRecord:
    def test_new_trajectory_entry_is_stamped(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        doc = append_benchmark_record(path, {"speedup": 3.0}, label="pr7")
        [entry] = doc["runs"]
        assert entry["speedup"] == 3.0
        assert entry["label"] == "pr7"
        assert entry["meta"]["cpu_count"] >= 1
        assert json.load(open(path)) == doc

    def test_old_meta_less_entries_are_left_untouched(self, tmp_path):
        # a trajectory written before the stamp existed: readers (and
        # appenders) must treat "meta" as optional on old entries
        path = str(tmp_path / "BENCH.json")
        with open(path, "w") as fh:
            json.dump({"runs": [{"speedup": 2.0}]}, fh)
        doc = append_benchmark_record(path, {"speedup": 3.0})
        old, new = doc["runs"]
        assert "meta" not in old
        assert old == {"speedup": 2.0}
        assert "meta" in new

    def test_caller_supplied_meta_wins(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        doc = append_benchmark_record(path, {"meta": {"source": "manual"}})
        assert doc["runs"][0]["meta"] == {"source": "manual"}

    def test_corrupt_trajectory_starts_fresh(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        with open(path, "w") as fh:
            fh.write("{not json")
        doc = append_benchmark_record(path, {"speedup": 1.0})
        assert len(doc["runs"]) == 1
