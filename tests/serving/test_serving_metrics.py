"""Latency histograms, percentile math, and the metrics facade."""

import math

import pytest

from repro.serving import (
    DOCUMENTED_STAGES,
    SNAPSHOT_SCHEMA,
    LatencyHistogram,
    PopularityEWMA,
    ServingMetrics,
    merge_snapshots,
    percentile,
)


class TestPercentile:
    def test_median_of_odd_set(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 50) == pytest.approx(0.5)

    def test_extremes(self):
        xs = [5.0, 1.0, 9.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyHistogram:
    def test_summary_fields(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 3, 4, 5):
            hist.record(ms / 1e3)
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(3e-3)
        assert summary["p50"] == pytest.approx(3e-3)
        assert summary["max"] == pytest.approx(5e-3)

    def test_empty_summary_is_zeroed(self):
        assert LatencyHistogram().summary() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_buckets_are_log_spaced(self):
        hist = LatencyHistogram()
        hist.record(1.5e-6)
        hist.record(3e-3)
        hist.record(3e-3)
        buckets = dict(hist.buckets())
        assert sum(buckets.values()) == 3
        assert all(upper > 0 for upper in buckets)

    def test_reservoir_bounded(self):
        hist = LatencyHistogram(max_samples=100)
        for i in range(1000):
            hist.record(i / 1e6)
        assert hist.count == 1000
        assert len(hist._samples) == 100
        # quantiles stay in the observed range
        assert 0.0 <= hist.quantile(50) <= 1e-3

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)

    def test_bucket_boundaries_are_powers_of_two(self):
        """Values at/around the 1 µs cutoff and a bucket edge land predictably."""
        hist = LatencyHistogram()
        hist.record(0.0)  # below the 1 µs floor -> first bucket
        hist.record(0.99e-6)
        hist.record(1e-6)  # exactly the floor -> second bucket
        hist.record(1e9)  # absurd value clamps to the last bucket
        buckets = dict(hist.buckets())
        assert buckets[1e-6] == 2
        assert sum(buckets.values()) == 4
        # the clamp bucket is the 2**26 µs one
        assert max(buckets) == pytest.approx(1e-6 * 2 ** 26)

    def test_reservoir_overflow_keeps_quantiles_representative(self):
        hist = LatencyHistogram(max_samples=64)
        for i in range(10_000):
            hist.record(i / 1e6)
        assert hist.count == 10_000
        assert len(hist._samples) == 64
        # p50 of uniform 0..10ms should land mid-range, not at an extreme
        assert 2e-3 < hist.quantile(50) < 8e-3

    def test_zero_sample_histogram_is_safe_everywhere(self):
        hist = LatencyHistogram()
        assert hist.quantile(99) == 0.0
        assert hist.buckets() == []
        assert hist.summary()["count"] == 0
        wire = hist.to_dict()
        assert wire["min"] == 0.0  # inf would not survive JSON
        rebuilt = LatencyHistogram.from_dict(wire)
        assert rebuilt.count == 0
        assert math.isinf(rebuilt._min)

    def test_merge_is_exact_for_buckets_and_counts(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for ms in (1, 2, 3):
            a.record(ms / 1e3)
        for ms in (4, 5):
            b.record(ms / 1e3)
        a.merge(b)
        assert a.count == 5
        assert a.mean == pytest.approx(3e-3)
        assert a.summary()["max"] == pytest.approx(5e-3)
        assert sum(n for _, n in a.buckets()) == 5
        # merging an empty histogram is a no-op
        before = a.summary()
        a.merge(LatencyHistogram())
        assert a.summary() == before

    def test_merge_downsamples_oversized_reservoirs(self):
        a, b = LatencyHistogram(max_samples=32), LatencyHistogram(max_samples=32)
        for i in range(100):
            a.record(i / 1e6)
            b.record((100 + i) / 1e6)
        a.merge(b)
        assert len(a._samples) == 32
        assert a.count == 200
        # the merged reservoir spans both sides
        assert min(a._samples) < 50e-6 < 150e-6 < max(a._samples)

    def test_to_dict_round_trip(self):
        hist = LatencyHistogram()
        for ms in (1, 5, 9):
            hist.record(ms / 1e3)
        rebuilt = LatencyHistogram.from_dict(hist.to_dict())
        assert rebuilt.summary() == hist.summary()
        assert rebuilt.buckets() == hist.buckets()


class TestServingMetrics:
    def test_observe_and_summary(self):
        metrics = ServingMetrics()
        metrics.observe("serialize", 0.010)
        metrics.observe("serialize", 0.020)
        summary = metrics.stage_summary("serialize")
        assert summary["count"] == 2
        assert summary["p50"] == pytest.approx(0.015)
        assert metrics.stage_summary("unknown") is None

    def test_stage_context_manager_times(self):
        metrics = ServingMetrics()
        with metrics.stage("consolidate"):
            pass
        summary = metrics.stage_summary("consolidate")
        assert summary["count"] == 1
        assert summary["max"] < 1.0

    def test_counters(self):
        metrics = ServingMetrics()
        metrics.increment("requests")
        metrics.increment("requests", by=4)
        assert metrics.counter("requests") == 5
        assert metrics.counter("absent") == 0

    def test_snapshot_follows_unified_schema(self):
        metrics = ServingMetrics()
        metrics.observe("total", 0.001)
        metrics.increment("requests")
        snap = metrics.snapshot()
        assert set(snap) == {"schema", "kind", "stages", "counters"}
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["kind"] == "serving"
        assert "total" in snap["stages"]
        assert snap["counters"]["requests"] == 1

    def test_snapshot_histograms_opt_in(self):
        metrics = ServingMetrics()
        metrics.observe("total", 0.001)
        snap = metrics.snapshot(include_histograms=True)
        assert snap["histograms"]["total"]["count"] == 1
        assert "histograms" not in metrics.snapshot()

    def test_documented_stages_is_the_ci_contract(self):
        # the scrape smoke in CI asserts each of these appears; keep the
        # tuple stable (additions fine, removals are a schema break)
        for stage in ("queue", "total", "predict_total", "fetch", "serialize"):
            assert stage in DOCUMENTED_STAGES

    def test_render_mentions_percentiles(self):
        metrics = ServingMetrics()
        metrics.observe("total", 0.002)
        text = metrics.render()
        for token in ("p50", "p95", "p99", "total"):
            assert token in text


class TestMergeSnapshots:
    def _metrics(self, values):
        metrics = ServingMetrics()
        for v in values:
            metrics.observe("total", v)
            metrics.increment("requests")
        return metrics

    def test_histogram_backed_merge_is_exact(self):
        a = self._metrics([0.001, 0.002])
        b = self._metrics([0.003, 0.004])
        merged = merge_snapshots(
            [a.snapshot(include_histograms=True), b.snapshot(include_histograms=True)]
        )
        total = merged["stages"]["total"]
        assert total["count"] == 4
        assert total["mean"] == pytest.approx(2.5e-3)
        assert "approx" not in total
        assert merged["counters"]["requests"] == 4
        assert merged["kind"] == "serving"

    def test_summary_only_merge_is_marked_approximate(self):
        a = self._metrics([0.001, 0.002])
        b = self._metrics([0.003, 0.004])
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        total = merged["stages"]["total"]
        assert total["count"] == 4
        assert total["approx"] is True
        assert total["max"] == pytest.approx(4e-3)

    def test_merge_re_keys_json_stringified_fanout(self):
        # a JSON round trip (the STATS wire frame) stringifies dict keys
        a = {"kind": "cluster", "counters": {}, "stages": {}, "fanout": {"1": 3}}
        b = {"kind": "cluster", "counters": {}, "stages": {}, "fanout": {1: 2, 2: 1}}
        merged = merge_snapshots([a, b])
        assert merged["fanout"] == {1: 5, 2: 1}
        assert merged["kind"] == "cluster"

    def test_merge_ignores_unknown_keys(self):
        snap = self._metrics([0.001]).snapshot()
        snap["future_field"] = {"x": 1}
        merged = merge_snapshots([snap])
        assert "future_field" not in merged

    def test_mixed_histogram_and_summary_contributors_fold_with_approx(self):
        """One peer ships histograms, one only summaries: the merged stage
        keeps exact counts/means but flags its quantiles approximate."""
        a = self._metrics([0.001, 0.002])
        b = self._metrics([0.003, 0.004])
        merged = merge_snapshots([a.snapshot(include_histograms=True), b.snapshot()])
        total = merged["stages"]["total"]
        assert total["count"] == 4
        assert total["mean"] == pytest.approx(2.5e-3)
        assert total["max"] == pytest.approx(4e-3)
        assert total["approx"] is True

    def test_approx_flag_survives_a_refold(self):
        """Merging a merged snapshot (frontend re-merging shard merges)
        must not launder an approximate quantile back to exact."""
        a = self._metrics([0.001, 0.002])
        b = self._metrics([0.003, 0.004])
        once = merge_snapshots([a.snapshot(include_histograms=True), b.snapshot()])
        c = self._metrics([0.005]).snapshot(include_histograms=True)
        twice = merge_snapshots([once, c])
        total = twice["stages"]["total"]
        assert total["count"] == 5
        assert total["approx"] is True

    def test_schema1_and_schema2_snapshots_merge(self):
        """An old schema-1 peer (no popularity/health) merges cleanly with
        a schema-2 snapshot; the additions survive untouched."""
        old = {
            "schema": 1,
            "kind": "serving",
            "stages": {"total": {"count": 2, "mean": 0.002, "p50": 0.002,
                                 "p95": 0.003, "p99": 0.003, "max": 0.003}},
            "counters": {"requests": 2},
        }
        new = self._metrics([0.001]).snapshot()
        new["popularity"] = {"taskA": {"score": 1.5, "count": 3}}
        new["health"] = {"shard0": {"state": "healthy"}}
        merged = merge_snapshots([old, new])
        assert merged["schema"] == SNAPSHOT_SCHEMA
        assert merged["counters"]["requests"] == 3
        assert merged["stages"]["total"]["approx"] is True  # neither had hists
        assert merged["popularity"] == {"taskA": {"score": 1.5, "count": 3}}
        assert merged["health"] == {"shard0": {"state": "healthy"}}

    def test_popularity_tables_add_and_health_tables_union(self):
        a = {"kind": "serving", "stages": {}, "counters": {},
             "popularity": {"t1": {"score": 2.0, "count": 4}},
             "health": {"shard0": {"state": "healthy"}}}
        b = {"kind": "serving", "stages": {}, "counters": {},
             "popularity": {"t1": {"score": 1.0, "count": 1},
                            "t2": {"score": 0.5, "count": 2}},
             "health": {"shard1": {"state": "degraded"}}}
        merged = merge_snapshots([a, b])
        assert merged["popularity"]["t1"] == {"score": 3.0, "count": 5}
        assert merged["popularity"]["t2"] == {"score": 0.5, "count": 2}
        assert merged["health"] == {
            "shard0": {"state": "healthy"},
            "shard1": {"state": "degraded"},
        }


class TestPopularityEWMA:
    def _ewma(self, halflife=30.0):
        clock = [0.0]
        ewma = PopularityEWMA(halflife_s=halflife, clock=lambda: clock[0])
        return ewma, clock

    def test_scores_accumulate_per_task(self):
        ewma, _clock = self._ewma()
        ewma.record(["a", "b"])
        ewma.record(["a"])
        snap = ewma.snapshot()
        assert snap["a"] == {"score": pytest.approx(2.0), "count": 2}
        assert snap["b"] == {"score": pytest.approx(1.0), "count": 1}
        assert len(ewma) == 2

    def test_score_halves_per_halflife_but_count_is_lifetime(self):
        ewma, clock = self._ewma(halflife=10.0)
        ewma.record(["a"])
        clock[0] = 10.0
        snap = ewma.snapshot()
        assert snap["a"]["score"] == pytest.approx(0.5)
        assert snap["a"]["count"] == 1  # raw volume never decays

    def test_recency_beats_stale_volume(self):
        ewma, clock = self._ewma(halflife=10.0)
        for _ in range(8):
            ewma.record(["stale"])
        clock[0] = 100.0  # ten halflives later
        ewma.record(["fresh"])
        assert ewma.top(1)[0][0] == "fresh"
        [(first, _), (second, _)] = ewma.top(2)
        assert (first, second) == ("fresh", "stale")

    def test_score_accessor_decays_to_now(self):
        ewma, clock = self._ewma(halflife=10.0)
        ewma.record(["a"])
        ewma.record(["a"])
        assert ewma.score("a") == pytest.approx(2.0)
        clock[0] = 10.0
        assert ewma.score("a") == pytest.approx(1.0)
        # reads never mutate: repeating the call gives the same value
        assert ewma.score("a") == pytest.approx(1.0)

    def test_score_of_unknown_key_is_zero(self):
        ewma, _clock = self._ewma()
        assert ewma.score("never") == 0.0

    def test_zero_elapsed_records_do_not_decay(self):
        # many records at one instant (e.g. a burst inside one clock tick)
        # must accumulate linearly, not blow up or decay
        ewma, _clock = self._ewma(halflife=10.0)
        for _ in range(5):
            ewma.record(["a"])
        assert ewma.score("a") == pytest.approx(5.0)

    def test_long_idle_gap_decays_toward_zero_without_underflow(self):
        ewma, clock = self._ewma(halflife=1.0)
        ewma.record(["a"])
        clock[0] = 1e6  # a million half-lives
        assert ewma.score("a") == 0.0
        ewma.record(["a"])  # recording after the gap starts fresh
        assert ewma.score("a") == pytest.approx(1.0)

    def test_tuple_keys_are_first_class(self):
        # the self-tuning controller keys composites by canonical names
        # tuples; any hashable must work
        ewma, _clock = self._ewma()
        ewma.record([("birds", "pets")])
        assert ewma.score(("birds", "pets")) == pytest.approx(1.0)
        assert ewma.top(1)[0][0] == ("birds", "pets")

    def test_invalid_halflife_rejected(self):
        with pytest.raises(ValueError):
            PopularityEWMA(halflife_s=0.0)

    def test_metrics_facade_snapshot_carries_popularity(self):
        metrics = ServingMetrics()
        snap = metrics.snapshot()
        assert "popularity" not in snap  # empty table stays off the wire
        metrics.record_tasks(["t1", "t2"])
        metrics.record_tasks(["t1"])
        snap = metrics.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["popularity"]["t1"]["count"] == 2
        assert snap["popularity"]["t2"]["count"] == 1
