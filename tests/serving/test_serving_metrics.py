"""Latency histograms, percentile math, and the metrics facade."""

import pytest

from repro.serving import LatencyHistogram, ServingMetrics, percentile


class TestPercentile:
    def test_median_of_odd_set(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 50) == pytest.approx(0.5)

    def test_extremes(self):
        xs = [5.0, 1.0, 9.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyHistogram:
    def test_summary_fields(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 3, 4, 5):
            hist.record(ms / 1e3)
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(3e-3)
        assert summary["p50"] == pytest.approx(3e-3)
        assert summary["max"] == pytest.approx(5e-3)

    def test_empty_summary_is_zeroed(self):
        assert LatencyHistogram().summary() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_buckets_are_log_spaced(self):
        hist = LatencyHistogram()
        hist.record(1.5e-6)
        hist.record(3e-3)
        hist.record(3e-3)
        buckets = dict(hist.buckets())
        assert sum(buckets.values()) == 3
        assert all(upper > 0 for upper in buckets)

    def test_reservoir_bounded(self):
        hist = LatencyHistogram(max_samples=100)
        for i in range(1000):
            hist.record(i / 1e6)
        assert hist.count == 1000
        assert len(hist._samples) == 100
        # quantiles stay in the observed range
        assert 0.0 <= hist.quantile(50) <= 1e-3

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)


class TestServingMetrics:
    def test_observe_and_summary(self):
        metrics = ServingMetrics()
        metrics.observe("serialize", 0.010)
        metrics.observe("serialize", 0.020)
        summary = metrics.stage_summary("serialize")
        assert summary["count"] == 2
        assert summary["p50"] == pytest.approx(0.015)
        assert metrics.stage_summary("unknown") is None

    def test_stage_context_manager_times(self):
        metrics = ServingMetrics()
        with metrics.stage("consolidate"):
            pass
        summary = metrics.stage_summary("consolidate")
        assert summary["count"] == 1
        assert summary["max"] < 1.0

    def test_counters(self):
        metrics = ServingMetrics()
        metrics.increment("requests")
        metrics.increment("requests", by=4)
        assert metrics.counter("requests") == 5
        assert metrics.counter("absent") == 0

    def test_snapshot_shape(self):
        metrics = ServingMetrics()
        metrics.observe("total", 0.001)
        metrics.increment("requests")
        snap = metrics.snapshot()
        assert set(snap) == {"stages", "counters"}
        assert "total" in snap["stages"]
        assert snap["counters"]["requests"] == 1

    def test_render_mentions_percentiles(self):
        metrics = ServingMetrics()
        metrics.observe("total", 0.002)
        text = metrics.render()
        for token in ("p50", "p95", "p99", "total"):
            assert token in text
