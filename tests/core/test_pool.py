"""PoolOfExperts: preprocessing phase mechanics and quality."""

import numpy as np
import pytest

from repro.core import PoEConfig, PoolOfExperts
from repro.distill import TrainConfig
from repro.eval.metrics import specialized_accuracy


def quick_config():
    """Tiny budgets: enough to exercise mechanics, not to reach quality."""
    return PoEConfig(
        library_depth=10,
        library_k=1.0,
        expert_ks=0.25,
        library_train=TrainConfig(epochs=2, batch_size=64, lr=0.05, seed=0),
        expert_train=TrainConfig(epochs=2, batch_size=64, lr=0.05, seed=0),
    )


class TestPreprocessingMechanics:
    def test_expert_before_library_rejected(self, micro_pool):
        pool, data, oracle = micro_pool
        fresh = PoolOfExperts(oracle, pool.hierarchy, quick_config())
        with pytest.raises(RuntimeError):
            fresh.extract_expert("c0", data.train.images)

    def test_consolidate_on_empty_pool_rejected(self, micro_pool):
        pool, data, oracle = micro_pool
        fresh = PoolOfExperts(oracle, pool.hierarchy, quick_config())
        with pytest.raises(RuntimeError):
            fresh.consolidate(["c0"])

    def test_library_extraction_freezes_trunk(self, micro_pool):
        pool, data, oracle = micro_pool
        fresh = PoolOfExperts(oracle, pool.hierarchy, quick_config())
        fresh.extract_library(data.train.images)
        assert fresh.library is not None
        assert all(not p.requires_grad for p in fresh.library.parameters())
        assert not fresh.library.training  # eval mode: fixed BN statistics

    def test_expert_extraction_adds_named_expert(self, micro_pool):
        pool, data, oracle = micro_pool
        fresh = PoolOfExperts(oracle, pool.hierarchy, quick_config())
        fresh.extract_library(data.train.images)
        fresh.extract_expert("c1", data.train.images)
        assert fresh.expert_names() == ("c1",)
        assert fresh.experts["c1"].num_classes == 2

    def test_library_untouched_by_expert_training(self, micro_pool):
        pool, data, oracle = micro_pool
        fresh = PoolOfExperts(oracle, pool.hierarchy, quick_config())
        fresh.extract_library(data.train.images)
        before = {k: v.copy() for k, v in fresh.library.state_dict().items()}
        fresh.extract_expert("c0", data.train.images)
        after = fresh.library.state_dict()
        for key in before:
            assert np.allclose(before[key], after[key]), key

    def test_preprocess_subset_of_tasks(self, micro_pool):
        pool, data, oracle = micro_pool
        fresh = PoolOfExperts(oracle, pool.hierarchy, quick_config())
        fresh.preprocess(data.train, tasks=["c0", "c3"])
        assert set(fresh.expert_names()) == {"c0", "c3"}

    def test_oracle_logits_cached(self, micro_pool):
        pool, data, oracle = micro_pool
        fresh = PoolOfExperts(oracle, pool.hierarchy, quick_config())
        first = fresh._oracle_logits_for(data.train.images)
        second = fresh._oracle_logits_for(data.train.images)
        assert first is second

    def test_oracle_memo_keyed_on_content_not_row_count(self, micro_pool, rng):
        """Regression: a different batch with the same shape must recompute.

        The memo used to key on ``images.shape[0]`` only, silently serving
        the *previous* batch's logits to any same-sized batch.
        """
        pool, data, oracle = micro_pool
        fresh = PoolOfExperts(oracle, pool.hierarchy, quick_config())
        batch_a = data.train.images[:32]
        batch_b = data.train.images[32:64]
        assert batch_a.shape == batch_b.shape
        logits_a = fresh._oracle_logits_for(batch_a)
        logits_b = fresh._oracle_logits_for(batch_b)
        assert not np.allclose(logits_a, logits_b)
        from repro.distill import batched_forward

        assert np.allclose(logits_b, batched_forward(oracle, batch_b))

    def test_feature_memo_keyed_on_content_not_row_count(self, micro_pool):
        """Same regression for the frozen-library feature memo."""
        pool, data, _ = micro_pool
        batch_a = data.train.images[:24]
        batch_b = data.train.images[24:48]
        feats_a = pool._features_for(batch_a)
        feats_b = pool._features_for(batch_b)
        assert feats_a.shape == feats_b.shape
        assert not np.allclose(feats_a, feats_b)
        # repeat lookups of the same content stay memoized
        assert pool._features_for(batch_b) is feats_b


class TestPreprocessedPoolQuality:
    """Assertions on the session-scoped, properly trained micro pool."""

    def test_all_experts_extracted(self, micro_pool):
        pool, _, _ = micro_pool
        assert set(pool.expert_names()) == {"c0", "c1", "c2", "c3"}

    def test_histories_recorded(self, micro_pool):
        pool, _, _ = micro_pool
        assert "library" in pool.histories
        assert "expert/c2" in pool.histories
        assert pool.histories["library"].total_seconds > 0

    def test_experts_accurate_on_own_task(self, micro_pool):
        pool, data, _ = micro_pool
        for name in pool.expert_names():
            model, composite = pool.consolidate([name])
            acc = specialized_accuracy(model, data.test, composite)
            assert acc > 0.8, f"expert {name} at {acc}"

    def test_composite_accuracy(self, micro_pool):
        pool, data, _ = micro_pool
        model, composite = pool.consolidate(["c0", "c1", "c2"])
        assert specialized_accuracy(model, data.test, composite) > 0.7

    def test_library_student_kept_for_table1(self, micro_pool):
        pool, _, _ = micro_pool
        assert pool.library_student is not None
        assert pool.library_student.trunk is pool.library
