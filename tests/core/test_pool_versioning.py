"""Expert versioning, invalidation listeners, subset views, stable seeding."""

import os
import subprocess
import sys

import pytest

import repro
from repro.core.pool import expert_init_seed

SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(repro.__file__), os.pardir))


class TestVersioning:
    def test_versions_start_at_zero_and_bump_on_attach(self, named_pool):
        pool, _, _ = named_pool
        assert pool.expert_version("nope") == 0
        before = pool.expert_version("pets")
        assert before >= 1  # extracted during preprocessing
        pool.attach_expert("pets", pool.experts["pets"])
        assert pool.expert_version("pets") == before + 1

    def test_listeners_notified_with_name_and_version(self, named_pool):
        pool, _, _ = named_pool
        events = []
        listener = lambda name, version: events.append((name, version))
        pool.add_listener(listener)
        try:
            pool.attach_expert("birds", pool.experts["birds"])
            assert events == [("birds", pool.expert_version("birds"))]
        finally:
            pool.remove_listener(listener)

    def test_attach_with_explicit_version(self, named_pool):
        pool, _, _ = named_pool
        pool.attach_expert("fish", pool.experts["fish"], version=41)
        assert pool.expert_version("fish") == 41

    def test_detach_notifies_and_removes(self, named_pool):
        pool, _, _ = named_pool
        head = pool.experts["fish"]
        events = []
        listener = lambda name, version: events.append(name)
        pool.add_listener(listener)
        try:
            assert pool.detach_expert("fish") is head
            assert "fish" not in pool.experts
            assert events == ["fish"]
            assert pool.detach_expert("fish") is None  # idempotent
        finally:
            pool.remove_listener(listener)
            pool.attach_expert("fish", head)  # undo for other tests


class TestSubset:
    def test_subset_shares_library_and_heads_by_reference(self, named_pool):
        pool, _, _ = named_pool
        view = pool.subset(["pets", "birds"])
        assert view.library is pool.library
        assert view.experts["pets"] is pool.experts["pets"]
        assert sorted(view.experts) == ["birds", "pets"]
        assert view.expert_version("pets") == pool.expert_version("pets")

    def test_subset_consolidates_only_its_slice(self, named_pool):
        pool, _, _ = named_pool
        view = pool.subset(["pets"])
        view.consolidate(["pets"])
        with pytest.raises(KeyError):
            view.consolidate(["birds"])

    def test_subset_unknown_task_rejected(self, named_pool):
        pool, _, _ = named_pool
        with pytest.raises(KeyError):
            pool.subset(["dragons"])


class TestStableSeeding:
    def test_seed_is_crc32_stable_across_hash_salts(self):
        """Expert init seeds must not depend on PYTHONHASHSEED."""
        snippet = (
            "from repro.core.pool import expert_init_seed;"
            "print([expert_init_seed(0, n) for n in ('pets', 'birds', 'fish')])"
        )
        outputs = set()
        for hash_seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONPATH": SRC_DIR, "PYTHONHASHSEED": hash_seed},
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
        assert outputs.pop() == str(
            [expert_init_seed(0, n) for n in ("pets", "birds", "fish")]
        )

    def test_distinct_tasks_get_distinct_seeds(self):
        seeds = {expert_init_seed(0, f"task{i}") for i in range(100)}
        assert len(seeds) > 95  # crc32 % 10_000 collisions are rare

    def test_reextraction_is_deterministic(self, named_pool):
        """Same task, same data, same config -> bit-identical expert."""
        import numpy as np

        pool, data, _ = named_pool
        images = data.train.images
        pool.extract_expert("pets", images)
        first = {
            k: np.array(v, copy=True)
            for k, v in pool.experts["pets"].state_dict().items()
        }
        pool.extract_expert("pets", images)
        second = pool.experts["pets"].state_dict()
        for key, value in first.items():
            assert np.array_equal(value, np.asarray(second[key])), key
