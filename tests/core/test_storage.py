"""ExpertStore persistence and Table 4 volume accounting."""

import os

import numpy as np
import pytest

from repro.core import (
    ExpertStore,
    PoolOfExperts,
    estimate_all_specialists_volume,
)
from repro.distill import batched_forward


class TestPersistence:
    def test_empty_pool_rejected(self, tmp_path, micro_pool):
        pool, _, oracle = micro_pool
        empty = PoolOfExperts(oracle, pool.hierarchy)
        with pytest.raises(RuntimeError):
            ExpertStore(str(tmp_path / "x")).save(empty)

    def test_roundtrip_preserves_outputs(self, tmp_path, micro_pool):
        pool, data, oracle = micro_pool
        store = ExpertStore(str(tmp_path / "pool"))
        store.save(pool)
        loaded = store.load(oracle, pool.hierarchy)
        assert set(loaded.expert_names()) == set(pool.expert_names())
        x = data.test.images[:8]
        for names in (["c0"], ["c1", "c2"]):
            m1, _ = pool.consolidate(names)
            m2, _ = loaded.consolidate(names)
            assert np.allclose(
                batched_forward(m1, x), batched_forward(m2, x), atol=1e-5
            )

    def test_loaded_library_frozen(self, tmp_path, micro_pool):
        pool, _, oracle = micro_pool
        store = ExpertStore(str(tmp_path / "pool2"))
        store.save(pool)
        loaded = store.load(oracle, pool.hierarchy)
        assert all(not p.requires_grad for p in loaded.library.parameters())
        assert not loaded.library.training

    def test_manifest_written(self, tmp_path, micro_pool):
        pool, _, _ = micro_pool
        root = str(tmp_path / "pool3")
        ExpertStore(root).save(pool)
        assert os.path.exists(os.path.join(root, "pool.json"))
        assert os.path.exists(os.path.join(root, "library.npz"))
        assert os.path.exists(os.path.join(root, "expert_c0.npz"))

    def test_on_disk_bytes_positive(self, tmp_path, micro_pool):
        pool, _, _ = micro_pool
        store = ExpertStore(str(tmp_path / "pool4"))
        store.save(pool)
        assert store.on_disk_bytes() > 0

    def test_loaded_config_matches(self, tmp_path, micro_pool):
        pool, _, oracle = micro_pool
        store = ExpertStore(str(tmp_path / "pool5"))
        store.save(pool)
        loaded = store.load(oracle, pool.hierarchy)
        assert loaded.config.expert_ks == pool.config.expert_ks
        assert loaded.config.alpha == pool.config.alpha


class TestVolumeAccounting:
    def test_estimate_formula(self):
        assert estimate_all_specialists_volume(3, 100) == 700  # (2^3 - 1) * 100
        assert estimate_all_specialists_volume(1, 10) == 10

    def test_estimate_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            estimate_all_specialists_volume(0, 10)

    def test_estimate_exponential_growth(self):
        """The paper's terabyte blow-up: 2^n dominates any per-model size."""
        small = estimate_all_specialists_volume(10, 1000)
        large = estimate_all_specialists_volume(34, 1000)  # paper's Tiny-ImageNet n
        assert large / small > 1e6

    def test_volume_report_pool_smaller_than_oracle(self, tmp_path, micro_pool):
        pool, _, oracle = micro_pool
        report = ExpertStore(str(tmp_path / "v1")).volume_report(pool, oracle)
        assert report.pool_bytes < report.oracle_bytes
        assert report.oracle_to_pool_ratio > 1.0

    def test_volume_report_specialists_blow_up(self, tmp_path, micro_pool):
        """At the paper's scale (n>=20 primitives) storing all 2^n
        specialists dwarfs the oracle; verified via the report's per-
        specialist size and the closed-form estimate."""
        pool, _, oracle = micro_pool
        report = ExpertStore(str(tmp_path / "v2")).volume_report(pool, oracle)
        per_specialist = int(report.mean_expert_bytes) + report.library_bytes
        at_paper_scale = estimate_all_specialists_volume(20, per_specialist)
        assert at_paper_scale > 100 * report.oracle_bytes

    def test_report_components_sum(self, tmp_path, micro_pool):
        pool, _, oracle = micro_pool
        report = ExpertStore(str(tmp_path / "v3")).volume_report(pool, oracle)
        assert report.pool_bytes == report.library_bytes + report.experts_total_bytes
        assert len(report.expert_bytes) == 4

    def test_as_dict_keys(self, tmp_path, micro_pool):
        pool, _, oracle = micro_pool
        d = ExpertStore(str(tmp_path / "v4")).volume_report(pool, oracle).as_dict()
        for key in ("oracle_bytes", "library_bytes", "pool_bytes", "all_specialists_bytes"):
            assert key in d
