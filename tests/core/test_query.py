"""ModelQueryEngine and TaskSpecificModel: the service API."""

import numpy as np
import pytest

from repro.core import ModelQueryEngine, TaskSpecificModel


class TestEngine:
    def test_available_tasks(self, named_pool):
        pool, _, _ = named_pool
        engine = ModelQueryEngine(pool)
        assert set(engine.available_tasks()) == {"pets", "birds", "fish"}

    def test_query_returns_task_model(self, named_pool):
        pool, _, _ = named_pool
        engine = ModelQueryEngine(pool)
        model = engine.query(["pets", "fish"])
        assert isinstance(model, TaskSpecificModel)
        assert model.class_names == ("cat", "dog", "eel", "cod")

    def test_query_accepts_composite(self, named_pool):
        pool, _, _ = named_pool
        engine = ModelQueryEngine(pool)
        composite = pool.hierarchy.composite(["birds"])
        model = engine.query(composite)
        assert model.task is composite

    def test_records_latency(self, named_pool):
        pool, _, _ = named_pool
        engine = ModelQueryEngine(pool)
        engine.query(["pets"])
        engine.query(["birds", "fish"])
        assert len(engine.records) == 2
        assert all(r.seconds < 1.0 for r in engine.records)
        assert engine.mean_latency() is not None

    def test_cache_hits_marked(self, named_pool):
        pool, _, _ = named_pool
        engine = ModelQueryEngine(pool, cache_models=True)
        m1 = engine.query(["pets", "birds"])
        m2 = engine.query(["pets", "birds"])
        assert m1 is m2
        assert [r.cached for r in engine.records] == [False, True]

    def test_cache_disabled(self, named_pool):
        pool, _, _ = named_pool
        engine = ModelQueryEngine(pool, cache_models=False)
        assert engine.query(["pets"]) is not engine.query(["pets"])

    def test_mean_latency_none_without_queries(self, named_pool):
        pool, _, _ = named_pool
        assert ModelQueryEngine(pool).mean_latency() is None

    def test_permutations_share_cache_entry(self, micro_pool):
        pool, _, _ = micro_pool
        engine = ModelQueryEngine(pool)
        a = engine.query(["c0", "c1"])
        b = engine.query(["c1", "c0"])
        assert [r.cached for r in engine.records] == [False, True]
        # each order keeps its requested logit layout, weights shared
        assert a.task.names == ("c0", "c1")
        assert b.task.names == ("c1", "c0")
        assert a.network.trunk is b.network.trunk

    def test_order_variants_bounded_per_entry(self, micro_pool):
        import itertools

        from repro.core.query import _MAX_ORDER_VARIANTS
        from repro.serving import canonical_tasks

        pool, _, _ = micro_pool
        engine = ModelQueryEngine(pool)
        perms = list(itertools.permutations(["c0", "c1", "c2", "c3"]))
        for perm in perms[: _MAX_ORDER_VARIANTS + 5]:
            engine.query(list(perm))
        entry = engine._cache.get(canonical_tasks(["c0", "c1", "c2", "c3"]))
        assert len(entry) <= _MAX_ORDER_VARIANTS


class TestTaskSpecificModel:
    def test_predict_returns_global_ids(self, named_pool):
        pool, data, _ = named_pool
        model = ModelQueryEngine(pool).query(["birds"])  # global classes (2, 3)
        preds = model.predict(data.test.images[:20])
        assert set(np.unique(preds)).issubset({2, 3})

    def test_predict_names(self, named_pool):
        pool, data, _ = named_pool
        model = ModelQueryEngine(pool).query(["fish"])
        names = model.predict_names(data.test.images[:5])
        assert all(n in ("eel", "cod") for n in names)

    def test_predict_proba_normalised(self, named_pool):
        pool, data, _ = named_pool
        model = ModelQueryEngine(pool).query(["pets", "birds"])
        probs = model.predict_proba(data.test.images[:8])
        assert probs.shape == (8, 4)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-4)

    def test_accuracy_on_own_task(self, named_pool):
        pool, data, _ = named_pool
        model = ModelQueryEngine(pool).query(["pets", "fish"])
        mask = np.isin(data.test.labels, model.classes)
        preds = model.predict(data.test.images[mask])
        assert (preds == data.test.labels[mask]).mean() > 0.7

    def test_size_accessors(self, named_pool):
        pool, _, _ = named_pool
        model = ModelQueryEngine(pool).query(["pets"])
        assert model.num_params() > 0
        assert model.num_flops((3, 6, 6)) > 0

    def test_mismatched_network_rejected(self, named_pool):
        pool, _, _ = named_pool
        network, _ = pool.consolidate(["pets", "birds"])
        wrong = pool.hierarchy.composite(["pets"])
        with pytest.raises(ValueError):
            TaskSpecificModel(network, wrong)
