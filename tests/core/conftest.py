"""Shared trained micro-pool for the core test modules (built once)."""

import numpy as np
import pytest

from repro.core import PoEConfig, PoolOfExperts
from repro.data import ClassHierarchy
from repro.data.synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
)
from repro.distill import TrainConfig, train_scratch
from repro.models import WideResNet


def build_micro_pool(hierarchy, seed=3, train_per_class=40, test_per_class=15):
    """Train a micro oracle and preprocess a full pool over ``hierarchy``."""
    generator = SyntheticImageGenerator(
        hierarchy, SyntheticConfig(image_size=6, noise_std=0.45), seed=seed
    )
    data = HierarchicalImageDataset(
        hierarchy, generator, train_per_class, test_per_class, seed=seed + 1
    )
    oracle = WideResNet(
        10, 2, 2, hierarchy.num_classes, rng=np.random.default_rng(seed)
    )
    train_scratch(
        oracle,
        data.train.images,
        data.train.labels,
        TrainConfig(epochs=10, batch_size=32, lr=0.05, seed=0),
    )
    pool = PoolOfExperts(
        oracle,
        hierarchy,
        PoEConfig(
            library_depth=10,
            library_k=1.0,
            expert_ks=0.25,
            library_train=TrainConfig(epochs=8, batch_size=32, lr=0.05, seed=0),
            expert_train=TrainConfig(epochs=8, batch_size=32, lr=0.05, seed=0),
        ),
    )
    pool.preprocess(data.train)
    return pool, data, oracle


@pytest.fixture(scope="session")
def micro_pool():
    """(pool, data, oracle) over a 4x2 anonymous hierarchy."""
    return build_micro_pool(ClassHierarchy.uniform(4, 2, prefix="c"))


@pytest.fixture(scope="session")
def named_pool():
    """(pool, data, oracle) over a small named hierarchy (service tests)."""
    hierarchy = ClassHierarchy(
        {"pets": ["cat", "dog"], "birds": ["owl", "crow"], "fish": ["eel", "cod"]}
    )
    return build_micro_pool(hierarchy, seed=21)
