"""Confidence / OOD analysis tools (Figure 5 machinery)."""

import numpy as np
import pytest

from repro import nn
from repro.core import ConfidenceProfile, max_confidences, ood_confidence_profile
from repro.data import ArrayDataset, ClassHierarchy


class FixedLogitModel(nn.Module):
    """Returns constant logits regardless of input — test double."""

    def __init__(self, logits_row):
        super().__init__()
        self._row = np.asarray(logits_row, dtype=np.float32)

    def forward(self, x):
        from repro.tensor import Tensor

        return Tensor(np.tile(self._row, (x.shape[0], 1)))


@pytest.fixture
def hierarchy():
    return ClassHierarchy.uniform(3, 2, prefix="h")


@pytest.fixture
def dataset(hierarchy, rng):
    labels = np.repeat(np.arange(6), 5)
    return ArrayDataset(rng.standard_normal((30, 3, 4, 4)).astype(np.float32), labels)


class TestMaxConfidences:
    def test_confident_model(self, rng):
        model = FixedLogitModel([10.0, -10.0])
        conf = max_confidences(model, rng.standard_normal((7, 3, 4, 4)).astype(np.float32))
        assert conf.shape == (7,)
        assert np.allclose(conf, 1.0, atol=1e-4)

    def test_uniform_model(self, rng):
        model = FixedLogitModel([0.0, 0.0, 0.0, 0.0])
        conf = max_confidences(model, rng.standard_normal((5, 3, 4, 4)).astype(np.float32))
        assert np.allclose(conf, 0.25, atol=1e-5)


class TestOODProfile:
    def test_overconfident_detector(self, hierarchy, dataset):
        model = FixedLogitModel([20.0, -20.0])
        profile = ood_confidence_profile(model, dataset, hierarchy.task("h0"))
        assert profile.overconfident_rate == 1.0
        assert profile.mode_bin[0] >= 0.9 - 1e-6  # float32 bin edge

    def test_calibrated_detector(self, hierarchy, dataset):
        model = FixedLogitModel([0.3, 0.0])
        profile = ood_confidence_profile(model, dataset, hierarchy.task("h0"))
        assert profile.overconfident_rate == 0.0
        assert profile.mean < 0.7

    def test_histogram_normalised(self, hierarchy, dataset):
        model = FixedLogitModel([1.0, 0.0])
        profile = ood_confidence_profile(model, dataset, hierarchy.task("h1"), bins=20)
        assert np.isclose(profile.histogram.sum(), 1.0)
        assert len(profile.histogram) == 20
        assert len(profile.bin_edges) == 21

    def test_only_ood_samples_used(self, hierarchy, dataset):
        """The profile must exclude the task's own classes: 20 of 30
        samples are OOD for a 2-class task here."""
        task = hierarchy.task("h0")
        mask = ~np.isin(dataset.labels, task.classes)
        assert mask.sum() == 20

        class CountingModel(FixedLogitModel):
            seen = 0

            def forward(self, x):
                CountingModel.seen += x.shape[0]
                return super().forward(x)

        model = CountingModel([1.0, 0.0])
        ood_confidence_profile(model, dataset, task)
        assert CountingModel.seen == 20

    def test_no_ood_samples_raises(self, hierarchy, rng):
        task = hierarchy.task("h0")
        only_task = ArrayDataset(
            rng.standard_normal((4, 3, 4, 4)).astype(np.float32),
            np.array([0, 0, 1, 1]),
        )
        model = FixedLogitModel([0.0, 0.0])
        with pytest.raises(ValueError):
            ood_confidence_profile(model, only_task, task)

    def test_composite_task_ood(self, hierarchy, dataset):
        q = hierarchy.composite(["h0", "h1"])
        model = FixedLogitModel([0.0, 0.0, 0.0, 0.0])
        profile = ood_confidence_profile(model, dataset, q)
        assert isinstance(profile, ConfidenceProfile)
        assert np.isclose(profile.mean, 0.25, atol=1e-4)
