"""Client/server model delivery (paper Fig. 1b)."""

import numpy as np
import pytest

from repro.core import (
    ModelQueryRequest,
    PoEClient,
    PoEServer,
    deserialize_task_model,
    serialize_task_model,
)
from repro.distill import batched_forward


class TestRequestValidation:
    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            ModelQueryRequest(tasks=())

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            ModelQueryRequest(tasks=("pets",), transport="float16")


class TestServer:
    def test_available_tasks(self, named_pool):
        pool, _, _ = named_pool
        server = PoEServer(pool)
        assert set(server.available_tasks()) == {"pets", "birds", "fish"}

    def test_handle_returns_payload(self, named_pool):
        pool, _, _ = named_pool
        server = PoEServer(pool)
        response = server.handle(ModelQueryRequest(tasks=("pets", "fish")))
        assert response.payload_bytes == len(response.payload) > 0
        assert response.build_seconds < 2.0
        assert server.served[-1] is response

    def test_unknown_task_propagates(self, named_pool):
        pool, _, _ = named_pool
        server = PoEServer(pool)
        with pytest.raises(KeyError):
            server.handle(ModelQueryRequest(tasks=("dragons",)))


class TestRoundtrip:
    def test_client_model_matches_server_model(self, named_pool):
        """The shipped model must compute exactly the server-side logits.

        Payloads are laid out in canonical (sorted) task order, so the
        reference consolidation uses the canonical order too; predictions
        are global class ids and therefore identical for any request order.
        """
        from repro.serving import canonical_tasks

        pool, data, _ = named_pool
        server = PoEServer(pool)
        client = PoEClient(server)
        model = client.request_model(["pets", "birds"])
        canonical_net, _ = pool.consolidate(list(canonical_tasks(["pets", "birds"])))
        request_net, request_comp = pool.consolidate(["pets", "birds"])
        x = data.test.images[:10]
        assert np.allclose(
            model.logits(x), batched_forward(canonical_net, x), atol=1e-5
        )
        from tests.conftest import assert_fused_ids_match

        # predict() runs the fused fast path: tie-tolerant vs the loop argmax
        assert_fused_ids_match(
            model.predict(x), batched_forward(request_net, x), request_comp.classes
        )

    def test_class_names_travel(self, named_pool):
        pool, _, _ = named_pool
        client = PoEClient(PoEServer(pool))
        model = client.request_model(["fish"])
        assert model.class_names == ("eel", "cod")
        assert tuple(model.classes) == (4, 5)

    def test_uint8_transport_smaller_and_close(self, named_pool):
        pool, data, _ = named_pool
        server = PoEServer(pool)
        full = server.handle(ModelQueryRequest(tasks=("pets", "birds")))
        packed = server.handle(
            ModelQueryRequest(tasks=("pets", "birds"), transport="uint8")
        )
        assert packed.payload_bytes < full.payload_bytes
        model_full = deserialize_task_model(full.payload)
        model_packed = deserialize_task_model(packed.payload)
        x = data.test.images[:40]
        agreement = (model_full.predict(x) == model_packed.predict(x)).mean()
        assert agreement > 0.9  # quantization costs little accuracy

    def test_payload_is_self_contained(self, named_pool):
        """Deserialization must not touch the pool — only the bytes."""
        pool, data, _ = named_pool
        payload = PoEServer(pool).handle(ModelQueryRequest(tasks=("pets",))).payload
        model = deserialize_task_model(bytes(payload))
        preds = model.predict(data.test.images[:5])
        assert set(np.unique(preds)).issubset({0, 1})

    def test_serialize_helper_direct(self, named_pool):
        pool, _, _ = named_pool
        network, composite = pool.consolidate(["birds"])
        payload = serialize_task_model(network, composite, pool.config)
        model = deserialize_task_model(payload)
        assert model.task.names == ("birds",)
