"""Train-free knowledge consolidation: correctness and realtime property."""

import time

import numpy as np
import pytest

from repro.distill import batched_forward


class TestConsolidationCorrectness:
    def test_unified_logits_are_expert_concatenation(self, micro_pool):
        """The consolidated model's output must equal each expert's own
        sub-logits, concatenated in query order (paper Fig. 3)."""
        pool, data, _ = micro_pool
        model, composite = pool.consolidate(["c1", "c3"])
        x = data.test.images[:10]
        unified = batched_forward(model, x)
        single1, _ = pool.consolidate(["c1"])
        single3, _ = pool.consolidate(["c3"])
        assert np.allclose(unified[:, :2], batched_forward(single1, x), atol=1e-5)
        assert np.allclose(unified[:, 2:], batched_forward(single3, x), atol=1e-5)

    def test_query_order_controls_layout(self, micro_pool):
        pool, data, _ = micro_pool
        a, comp_a = pool.consolidate(["c0", "c2"])
        b, comp_b = pool.consolidate(["c2", "c0"])
        x = data.test.images[:6]
        la, lb = batched_forward(a, x), batched_forward(b, x)
        assert np.allclose(la[:, :2], lb[:, 2:], atol=1e-6)
        assert comp_a.classes == (0, 1, 4, 5)
        assert comp_b.classes == (4, 5, 0, 1)

    def test_missing_expert_raises(self, micro_pool):
        pool, _, _ = micro_pool
        with pytest.raises(KeyError, match="c9"):
            pool.consolidate(["c0", "c9"])

    def test_shares_weights_with_pool(self, micro_pool):
        pool, _, _ = micro_pool
        model, _ = pool.consolidate(["c0", "c1"])
        assert model.trunk is pool.library
        assert model.heads[0] is pool.experts["c0"]
        assert model.heads[1] is pool.experts["c1"]

    def test_composite_task_object_accepted(self, micro_pool):
        pool, _, _ = micro_pool
        composite = pool.hierarchy.composite(["c0", "c3"])
        model, returned = pool.consolidate(composite)
        assert returned is composite
        assert model.num_classes == 4

    def test_model_returned_in_eval_mode(self, micro_pool):
        pool, _, _ = micro_pool
        model, _ = pool.consolidate(["c0"])
        assert not model.training


class TestTrainFreeProperty:
    def test_consolidation_is_fast(self, micro_pool):
        """The service phase is 'realtime': assembling M(Q) takes far less
        than a millisecond-scale budget because no weights move."""
        pool, _, _ = micro_pool
        pool.consolidate(["c0", "c1", "c2", "c3"])  # warm up
        start = time.perf_counter()
        for _ in range(50):
            pool.consolidate(["c0", "c1", "c2", "c3"])
        per_call = (time.perf_counter() - start) / 50
        assert per_call < 0.01  # 10 ms is already generous

    def test_consolidation_does_not_modify_weights(self, micro_pool):
        pool, _, _ = micro_pool
        before = {k: v.copy() for k, v in pool.experts["c2"].state_dict().items()}
        pool.consolidate(["c2", "c3"])
        after = pool.experts["c2"].state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_scales_to_all_primitives(self, micro_pool):
        pool, data, _ = micro_pool
        model, composite = pool.consolidate(["c0", "c1", "c2", "c3"])
        assert model.num_classes == data.hierarchy.num_classes
        assert model.n_branches == 4
