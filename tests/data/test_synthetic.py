"""Synthetic hierarchical dataset: structure, determinism, separability."""

import numpy as np
import pytest

from repro.data import ClassHierarchy, make_synth_cifar, make_synth_tiny_imagenet
from repro.data.synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
)


@pytest.fixture
def hierarchy():
    return ClassHierarchy.uniform(4, 3, prefix="s")


@pytest.fixture
def generator(hierarchy):
    return SyntheticImageGenerator(hierarchy, SyntheticConfig(image_size=8), seed=0)


class TestGenerator:
    def test_prototypes_deterministic(self, hierarchy):
        g1 = SyntheticImageGenerator(hierarchy, seed=5)
        g2 = SyntheticImageGenerator(hierarchy, seed=5)
        assert np.allclose(g1.class_mean(0), g2.class_mean(0))

    def test_different_seeds_differ(self, hierarchy):
        g1 = SyntheticImageGenerator(hierarchy, seed=1)
        g2 = SyntheticImageGenerator(hierarchy, seed=2)
        assert not np.allclose(g1.class_mean(0), g2.class_mean(0))

    def test_sample_shape(self, generator, rng):
        batch = generator.sample_batch([0, 1, 5, 11], rng)
        assert batch.shape == (4, 3, 8, 8)
        assert batch.dtype == np.float32

    def test_hierarchical_similarity(self, generator):
        """Classes of one superclass must be closer than across superclasses.

        This is the structural property PoE exploits (dark knowledge within
        a primitive task), so the generator must guarantee it.
        """
        def dist(a, b):
            return np.linalg.norm(generator.class_mean(a) - generator.class_mean(b))

        # classes 0,1,2 share superclass s0; 3 belongs to s1
        within = np.mean([dist(0, 1), dist(0, 2), dist(1, 2)])
        across = np.mean([dist(0, 3), dist(1, 6), dist(2, 9)])
        assert within < across

    def test_noise_configurable(self, hierarchy, rng):
        quiet = SyntheticImageGenerator(hierarchy, SyntheticConfig(noise_std=0.01), seed=0)
        loud = SyntheticImageGenerator(hierarchy, SyntheticConfig(noise_std=2.0), seed=0)
        q = quiet.sample_batch([0] * 32, np.random.default_rng(1))
        l = loud.sample_batch([0] * 32, np.random.default_rng(1))
        assert l.std(axis=0).mean() > q.std(axis=0).mean()


class TestDatasetSplits:
    def test_split_sizes(self, hierarchy, generator):
        data = HierarchicalImageDataset(hierarchy, generator, 10, 5, seed=0)
        assert len(data.train) == 120
        assert len(data.test) == 60

    def test_all_classes_present(self, hierarchy, generator):
        data = HierarchicalImageDataset(hierarchy, generator, 5, 3, seed=0)
        assert set(np.unique(data.train.labels)) == set(range(12))
        assert set(np.unique(data.test.labels)) == set(range(12))

    def test_train_test_disjoint_noise(self, hierarchy, generator):
        data = HierarchicalImageDataset(hierarchy, generator, 5, 5, seed=0)
        assert not np.allclose(data.train.images[:5], data.test.images[:5])

    def test_deterministic_by_seed(self, hierarchy, generator):
        d1 = HierarchicalImageDataset(hierarchy, generator, 5, 5, seed=9)
        d2 = HierarchicalImageDataset(hierarchy, generator, 5, 5, seed=9)
        assert np.allclose(d1.train.images, d2.train.images)


class TestFactories:
    def test_synth_cifar_structure(self):
        data = make_synth_cifar(num_superclasses=5, classes_per_super=4,
                                train_per_class=3, test_per_class=2)
        assert data.num_classes == 20
        assert data.hierarchy.num_primitive_tasks == 5

    def test_synth_tiny_variable_groups(self):
        data = make_synth_tiny_imagenet(group_sizes=[3, 7, 10],
                                        train_per_class=2, test_per_class=1)
        assert data.num_classes == 20
        sizes = [len(t) for t in data.hierarchy.primitive_tasks()]
        assert sizes == [3, 7, 10]

    def test_synth_tiny_random_groups_in_range(self):
        data = make_synth_tiny_imagenet(num_groups=8, train_per_class=1, test_per_class=1)
        sizes = [len(t) for t in data.hierarchy.primitive_tasks()]
        assert len(sizes) == 8
        assert all(3 <= s <= 10 for s in sizes)  # paper: groups of 3-10 classes
