"""DataLoader batching semantics."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader


@pytest.fixture
def dataset(rng):
    images = rng.standard_normal((25, 1, 2, 2)).astype(np.float32)
    labels = np.arange(25) % 5
    return ArrayDataset(images, labels)


class TestBatching:
    def test_batch_count(self, dataset):
        loader = DataLoader(dataset, batch_size=10, shuffle=False)
        assert len(loader) == 3
        batches = list(loader)
        assert batches[0][0].shape[0] == 10
        assert batches[-1][0].shape[0] == 5

    def test_drop_last(self, dataset):
        loader = DataLoader(dataset, batch_size=10, shuffle=False, drop_last=True)
        assert len(loader) == 2
        assert all(b[0].shape[0] == 10 for b in loader)

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)

    def test_covers_all_samples(self, dataset):
        loader = DataLoader(dataset, batch_size=7, shuffle=True, seed=0)
        labels = np.concatenate([y for _, y in loader])
        assert sorted(labels.tolist()) == sorted(dataset.labels.tolist())

    def test_num_samples(self, dataset):
        assert DataLoader(dataset, batch_size=4).num_samples == 25


class TestShuffling:
    def test_no_shuffle_preserves_order(self, dataset):
        loader = DataLoader(dataset, batch_size=25, shuffle=False)
        _, labels = next(iter(loader))
        assert np.array_equal(labels, dataset.labels)

    def test_seeded_shuffle_deterministic(self, dataset):
        l1 = DataLoader(dataset, batch_size=25, shuffle=True, seed=42)
        l2 = DataLoader(dataset, batch_size=25, shuffle=True, seed=42)
        assert np.array_equal(next(iter(l1))[1], next(iter(l2))[1])

    def test_epochs_reshuffle(self, dataset):
        loader = DataLoader(dataset, batch_size=25, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)


class TestTransform:
    def test_transform_applied_per_batch(self, dataset):
        loader = DataLoader(
            dataset,
            batch_size=5,
            shuffle=False,
            transform=lambda batch, rng: batch * 0.0,
        )
        batch, _ = next(iter(loader))
        assert np.allclose(batch, 0.0)

    def test_transform_does_not_mutate_source(self, dataset):
        original = dataset.images.copy()
        loader = DataLoader(
            dataset, batch_size=5, shuffle=False, transform=lambda b, r: b * 0.0
        )
        list(loader)
        assert np.allclose(dataset.images, original)
