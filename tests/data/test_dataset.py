"""Datasets, subsets and task-specific label remapping."""

import numpy as np
import pytest

from repro.data import ArrayDataset, ClassHierarchy, Subset, label_remap, task_subset


@pytest.fixture
def hierarchy():
    return ClassHierarchy.uniform(3, 2, prefix="g")


@pytest.fixture
def dataset(hierarchy, rng):
    labels = np.repeat(np.arange(6), 4)
    images = rng.standard_normal((24, 3, 4, 4)).astype(np.float32)
    return ArrayDataset(images, labels)


class TestArrayDataset:
    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 24
        image, label = dataset[5]
        assert image.shape == (3, 4, 4)
        assert label == 1

    def test_rejects_non_nchw(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.standard_normal((4, 4)), np.zeros(4))

    def test_rejects_mismatched_labels(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.standard_normal((4, 1, 2, 2)), np.zeros(3))

    def test_num_classes(self, dataset):
        assert dataset.num_classes == 6

    def test_arrays_view(self, dataset):
        images, labels = dataset.arrays()
        assert images.shape[0] == labels.shape[0] == 24


class TestSubset:
    def test_indexing(self, dataset):
        sub = Subset(dataset, [0, 10, 20])
        assert len(sub) == 3
        assert sub[1][1] == dataset[10][1]


class TestLabelRemap:
    def test_primitive_remap(self, hierarchy):
        task = hierarchy.task("g1")  # classes (2, 3)
        assert label_remap(task) == {2: 0, 3: 1}

    def test_composite_remap_order(self, hierarchy):
        q = hierarchy.composite(["g2", "g0"])  # classes (4,5,0,1)
        assert label_remap(q) == {4: 0, 5: 1, 0: 2, 1: 3}


class TestTaskSubset:
    def test_filters_classes(self, dataset, hierarchy):
        task = hierarchy.task("g1")
        sub = task_subset(dataset, task)
        assert len(sub) == 8
        assert set(np.unique(sub.labels)) == {0, 1}

    def test_remap_false_keeps_global(self, dataset, hierarchy):
        task = hierarchy.task("g1")
        sub = task_subset(dataset, task, remap=False)
        assert set(np.unique(sub.labels)) == {2, 3}

    def test_composite_subset(self, dataset, hierarchy):
        q = hierarchy.composite(["g2", "g0"])
        sub = task_subset(dataset, q)
        assert len(sub) == 16
        # global 4 -> local 0, global 0 -> local 2
        originals = dataset.labels[np.isin(dataset.labels, q.classes)]
        mapping = label_remap(q)
        assert np.array_equal(sub.labels, [mapping[int(y)] for y in originals])

    def test_images_match_labels(self, dataset, hierarchy):
        task = hierarchy.task("g0")
        sub = task_subset(dataset, task)
        mask = np.isin(dataset.labels, task.classes)
        assert np.allclose(sub.images, dataset.images[mask])
