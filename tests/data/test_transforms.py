"""Batch-level transforms."""

import numpy as np
import pytest

from repro.data import (
    Compose,
    Normalize,
    gaussian_noise,
    random_horizontal_flip,
    random_shift,
    standard_augmentation,
)


@pytest.fixture
def batch(rng):
    return rng.standard_normal((8, 3, 6, 6)).astype(np.float32)


class TestFlip:
    def test_preserves_shape_and_content_set(self, batch, rng):
        out = random_horizontal_flip(batch, rng)
        assert out.shape == batch.shape
        # each image is either identical or exactly flipped
        for i in range(len(batch)):
            same = np.allclose(out[i], batch[i])
            flipped = np.allclose(out[i], batch[i, :, :, ::-1])
            assert same or flipped

    def test_some_flips_happen(self, batch):
        out = random_horizontal_flip(batch, np.random.default_rng(0))
        assert not np.allclose(out, batch)


class TestShift:
    def test_zero_shift_identity(self, batch, rng):
        assert np.allclose(random_shift(0)(batch, rng), batch)

    def test_preserves_pixel_multiset(self, batch, rng):
        out = random_shift(2)(batch, rng)
        for i in range(len(batch)):
            assert np.isclose(out[i].sum(), batch[i].sum(), atol=1e-4)


class TestNoise:
    def test_changes_values_modestly(self, batch, rng):
        out = gaussian_noise(0.1)(batch, rng)
        delta = out - batch
        assert 0.05 < delta.std() < 0.2


class TestNormalize:
    def test_fit_standardises(self, batch):
        norm = Normalize.fit(batch)
        out = norm(batch)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_fixed_stats(self):
        norm = Normalize(mean=[1.0], std=[2.0])
        batch = np.full((2, 1, 2, 2), 5.0, dtype=np.float32)
        assert np.allclose(norm(batch), 2.0)


class TestCompose:
    def test_applies_in_order(self, batch, rng):
        double = lambda b, r: b * 2
        add_one = lambda b, r: b + 1
        out = Compose([double, add_one])(batch, rng)
        assert np.allclose(out, batch * 2 + 1)

    def test_standard_augmentation_runs(self, batch, rng):
        aug = standard_augmentation(max_shift=1, noise_std=0.05)
        out = aug(batch, rng)
        assert out.shape == batch.shape
