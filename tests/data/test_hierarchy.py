"""Class hierarchies, primitive tasks and composite tasks."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import ClassHierarchy, CompositeTask, PrimitiveTask


@pytest.fixture
def hierarchy():
    return ClassHierarchy(
        {
            "mammals": ["cat", "dog"],
            "birds": ["sparrow", "eagle", "owl"],
            "fish": ["trout"],
        }
    )


class TestConstruction:
    def test_global_ids_sequential(self, hierarchy):
        assert hierarchy.num_classes == 6
        assert hierarchy.task("mammals").classes == (0, 1)
        assert hierarchy.task("birds").classes == (2, 3, 4)
        assert hierarchy.task("fish").classes == (5,)

    def test_class_names_order(self, hierarchy):
        assert hierarchy.class_names == ("cat", "dog", "sparrow", "eagle", "owl", "trout")

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            ClassHierarchy({})

    def test_empty_superclass_rejected(self):
        with pytest.raises(ValueError):
            ClassHierarchy({"x": []})

    def test_unknown_task_raises(self, hierarchy):
        with pytest.raises(KeyError):
            hierarchy.task("reptiles")

    def test_task_of_class(self, hierarchy):
        assert hierarchy.task_of_class(3).name == "birds"
        assert hierarchy.task_of_class(0).name == "mammals"

    def test_tree_structure(self, hierarchy):
        tree = hierarchy.tree
        assert nx.is_tree(tree)
        assert tree.has_edge("<root>", "birds")
        assert tree.has_edge("birds", "owl")

    def test_uniform_factory(self):
        h = ClassHierarchy.uniform(5, 4)
        assert h.num_classes == 20
        assert h.num_primitive_tasks == 5
        assert all(len(t) == 4 for t in h.primitive_tasks())

    def test_variable_factory(self):
        h = ClassHierarchy.variable([3, 7, 10])
        assert [len(t) for t in h.primitive_tasks()] == [3, 7, 10]
        assert h.num_classes == 20


class TestPrimitiveTask:
    def test_contains(self, hierarchy):
        birds = hierarchy.task("birds")
        assert 3 in birds
        assert 0 not in birds

    def test_len(self, hierarchy):
        assert len(hierarchy.task("fish")) == 1

    def test_frozen(self, hierarchy):
        with pytest.raises(AttributeError):
            hierarchy.task("fish").name = "x"


class TestCompositeTask:
    def test_classes_in_concatenation_order(self, hierarchy):
        q = hierarchy.composite(["birds", "mammals"])
        assert q.classes == (2, 3, 4, 0, 1)
        assert q.names == ("birds", "mammals")

    def test_n_primitives(self, hierarchy):
        assert hierarchy.composite(["birds", "fish"]).n_primitives == 2

    def test_len_is_total_classes(self, hierarchy):
        assert len(hierarchy.composite(["mammals", "birds", "fish"])) == 6

    def test_contains(self, hierarchy):
        q = hierarchy.composite(["mammals", "fish"])
        assert 5 in q and 1 in q and 3 not in q

    def test_overlap_rejected(self, hierarchy):
        birds = hierarchy.task("birds")
        with pytest.raises(ValueError):
            CompositeTask((birds, birds))

    def test_all_composites_counts(self, hierarchy):
        assert len(hierarchy.all_composites(2)) == 3  # C(3,2)
        assert len(hierarchy.all_composites(3)) == 1

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=5))
    def test_uniform_composites_property(self, n_super, per):
        import math

        h = ClassHierarchy.uniform(n_super, per)
        for k in range(1, n_super + 1):
            combos = h.all_composites(k)
            assert len(combos) == math.comb(n_super, k)
            for q in combos:
                assert len(q) == k * per
                assert len(set(q.classes)) == len(q.classes)
