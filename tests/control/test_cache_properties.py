"""Property tests: ByteBudgetLRU invariants, with and without score hooks.

A tiny reference model re-implements the *documented* semantics — LRU
recency, byte budget, lowest-score victim with strict-``<`` LRU tie-break,
admission denial when the new entry itself scores lowest — and hypothesis
drives both the model and the real cache through arbitrary op sequences.
Any divergence in contents, order, or counters is a bug in one of them.
The ``scores=None`` case doubles as the regression that an unhooked cache
is plain LRU, and the constant-score case pins the tie-break: a hook that
cannot distinguish entries must reproduce LRU eviction order exactly.
"""

from collections import OrderedDict

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serving.cache import ByteBudgetLRU

KEYS = "abcdef"
BUDGET = 100

#: Arbitrary op sequences over a small key alphabet.  Sizes up to just
#: over half the budget force frequent evictions and admission checks.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS), st.integers(0, 60)),
        st.tuples(st.just("get"), st.sampled_from(KEYS)),
        st.tuples(st.just("discard"), st.sampled_from(KEYS)),
        st.tuples(st.just("clear")),
    ),
    max_size=40,
)

#: None → unhooked cache; otherwise a fixed key → score table.  Scores are
#: small integers so ties are common (the tie-break path gets exercised).
SCORE_TABLES = st.one_of(
    st.none(),
    st.fixed_dictionaries({k: st.integers(0, 3) for k in KEYS}),
)


class ModelLRU:
    """Reference implementation of the documented ByteBudgetLRU semantics."""

    def __init__(self, budget, score=None):
        self.budget = budget
        self.score = score
        self.entries = OrderedDict()  # key -> size
        self.hits = self.misses = 0
        self.insertions = self.evictions = 0
        self.rejections = self.score_evictions = 0

    def _victim(self):
        if self.score is None:
            return next(iter(self.entries))
        best_key, best_score = None, None
        for key in self.entries:  # LRU -> MRU; strict < keeps ties on LRU
            s = float(self.score(key))
            if best_score is None or s < best_score:
                best_key, best_score = key, s
        return best_key

    def get(self, key):
        if key not in self.entries:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return self.entries[key]

    def put(self, key, size):
        if self.budget == 0 or size > self.budget:
            self.rejections += 1
            return False
        self.entries.pop(key, None)
        self.entries[key] = size
        self.insertions += 1
        while sum(self.entries.values()) > self.budget:
            victim = self._victim()
            del self.entries[victim]
            if victim == key:
                self.insertions -= 1
                self.rejections += 1
                return False
            self.evictions += 1
            if self.score is not None:
                self.score_evictions += 1
        return True

    def discard(self, key):
        return self.entries.pop(key, None) is not None

    def clear(self):
        self.entries.clear()


def _apply(cache, model, ops):
    """Run ``ops`` through both and assert equivalence after every step."""
    for op in ops:
        if op[0] == "put":
            _, key, size = op
            assert cache.put(key, size, size) == model.put(key, size)
        elif op[0] == "get":
            assert cache.get(op[1]) == model.get(op[1])
        elif op[0] == "discard":
            assert cache.discard(op[1]) == model.discard(op[1])
        else:
            cache.clear()
            model.clear()
        stats = cache.stats()
        # hard budget invariant, whatever the policy decided
        assert stats.current_bytes <= BUDGET
        # identical contents in identical recency order
        assert cache.keys() == list(model.entries)
        assert stats.current_bytes == sum(model.entries.values())
        assert stats.current_entries == len(model.entries)
        # identical counter trajectories
        assert stats.hits == model.hits
        assert stats.misses == model.misses
        assert stats.insertions == model.insertions
        assert stats.evictions == model.evictions
        assert stats.rejections == model.rejections
        assert stats.score_evictions == model.score_evictions
        assert stats.score_evictions <= stats.evictions or stats.evictions == 0


@pytest.mark.parametrize("tier", [None, "model", "payload", "result"])
@given(ops=OPS, scores=SCORE_TABLES)
def test_cache_matches_reference_model(tier, ops, scores):
    hook = None if scores is None else (lambda key: scores[key])
    cache = ByteBudgetLRU(BUDGET, name=tier, evict_score=hook)
    _apply(cache, ModelLRU(BUDGET, hook), ops)


@given(ops=OPS)
def test_constant_score_hook_is_plain_lru(ops):
    """A hook that cannot rank entries must evict in exact LRU order."""
    plain = ByteBudgetLRU(BUDGET)
    hooked = ByteBudgetLRU(BUDGET, evict_score=lambda key: 1.0)
    for op in ops:
        if op[0] == "put":
            _, key, size = op
            assert plain.put(key, size, size) == hooked.put(key, size, size)
        elif op[0] == "get":
            assert plain.get(op[1]) == hooked.get(op[1])
        elif op[0] == "discard":
            assert plain.discard(op[1]) == hooked.discard(op[1])
        else:
            plain.clear()
            hooked.clear()
        assert plain.keys() == hooked.keys()
        p, h = plain.stats(), hooked.stats()
        # every counter agrees except score attribution: the hooked cache
        # routes the same evictions through its (tied) score scan
        assert (p.hits, p.misses, p.insertions, p.evictions, p.rejections) == (
            h.hits,
            h.misses,
            h.insertions,
            h.evictions,
            h.rejections,
        )
        assert p.score_evictions == 0
        assert h.score_evictions == h.evictions


@given(ops=OPS, scores=st.fixed_dictionaries({k: st.integers(0, 3) for k in KEYS}))
def test_raising_hook_degrades_to_lru(ops, scores):
    """A hook that blows up must leave the cache behaving like plain LRU."""

    def bomb(key):
        raise RuntimeError("scorer down")

    plain = ByteBudgetLRU(BUDGET)
    hooked = ByteBudgetLRU(BUDGET, evict_score=bomb)
    for op in ops:
        if op[0] == "put":
            _, key, size = op
            assert plain.put(key, size, size) == hooked.put(key, size, size)
        elif op[0] == "get":
            assert plain.get(op[1]) == hooked.get(op[1])
        elif op[0] == "discard":
            assert plain.discard(op[1]) == hooked.discard(op[1])
        else:
            plain.clear()
            hooked.clear()
        assert plain.keys() == hooked.keys()


def test_self_eviction_is_admission_denial():
    """A new key scoring below everything resident is rejected, not cached."""
    scores = {"hot": 5.0, "warm": 3.0, "cold": 0.1}
    cache = ByteBudgetLRU(100, evict_score=lambda k: scores[k])
    assert cache.put("hot", b"x", 50)
    assert cache.put("warm", b"y", 50)
    assert not cache.put("cold", b"z", 50)
    assert cache.keys() == ["hot", "warm"]
    stats = cache.stats()
    assert stats.rejections == 1
    assert stats.insertions == 2
    assert stats.evictions == 0
