"""Control-plane tests: a package so suites can share the sim harness."""
