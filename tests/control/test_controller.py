"""CacheController behaviour, driven entirely through the sim harness.

Every test steps the control loop synchronously on a fake clock — no
sleeps, no background threads, no wall-time dependence — so outcomes are
bit-for-bit reproducible across machines and runs.
"""

import pytest

from repro.control import CacheController, ControllerConfig, CostEWMA
from repro.obs.journal import JOURNAL
from repro.serving.canonical import payload_key
from repro.serving.gateway import GatewayConfig

from .sim import FakeClock, SimHarness


HOT = ("c0", "c1")


@pytest.fixture()
def sim(control_pool):
    with SimHarness(control_pool) as harness:
        yield harness


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(popularity_halflife_s=0)
        with pytest.raises(ValueError):
            ControllerConfig(cost_smoothing=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(prefetch_limit=-1)
        with pytest.raises(ValueError):
            ControllerConfig(replicate_max_copies=0)
        with pytest.raises(ValueError):
            ControllerConfig(replicate_cooldown_s=-1)

    def test_cost_ewma_cold_keys_fall_back_to_fleet_typical(self):
        costs = CostEWMA(alpha=0.5)
        assert costs.seconds("never") == 0.0
        costs.observe("a", 2.0, 100)
        # a never-seen key is scored with the fleet-typical cost, not zero
        assert costs.seconds("unseen") == pytest.approx(2.0)
        costs.observe("a", 4.0, 200)
        assert costs.seconds("a") == pytest.approx(3.0)
        assert costs.nbytes("a") == pytest.approx(150.0)
        assert len(costs) == 1


class TestWiring:
    def test_attach_installs_score_hooks(self, sim):
        gw = sim.gateway
        assert gw.controller is sim.controller
        assert gw.payload_cache.evict_score is not None
        assert gw.model_cache.evict_score is not None
        assert gw.result_cache.evict_score is not None

    def test_requests_feed_popularity_and_costs(self, sim):
        sim.serve(HOT)
        sim.serve(HOT)
        snap = sim.controller.snapshot()
        assert snap["tracked_queries"] == 1
        assert snap["tracked_tasks"] == 2
        assert snap["build_costs"] == 1
        assert sim.controller.hot_queries(1)[0][0] == HOT
        assert sim.controller.composite_score(HOT) > 0.0


class TestEvictionBias:
    def test_hot_composite_survives_cold_pollution(self, control_pool):
        # size the budget to barely fit two hot payloads
        with SimHarness(control_pool) as probe:
            payload_bytes = probe.serve(HOT).payload_bytes
        config = GatewayConfig(max_workers=1, payload_cache_bytes=2 * payload_bytes)
        with SimHarness(control_pool, gateway_config=config) as sim:
            for _ in range(10):
                sim.serve(HOT)
            # one-off cold queries would evict the hot payload under LRU
            for cold in (("c2",), ("c3",), ("c2", "c3"), ("c0", "c3")):
                sim.serve(cold)
            key = payload_key(HOT, "float32")
            assert sim.gateway.payload_cache.contains(key)
            stats = sim.payload_stats()
            assert stats.rejections + stats.score_evictions > 0
            assert sim.serve(HOT).payload_cache_hit

    def test_unrequested_entries_score_zero(self, sim):
        sim.serve(HOT)
        assert sim.controller.composite_score(("c2", "c3")) == 0.0


class TestPrefetch:
    def test_tick_rebuilds_discarded_hot_payload(self, sim):
        for _ in range(5):
            sim.serve(HOT)
        key = payload_key(HOT, "float32")
        # simulate an invalidation (e.g. a version bump dropping payloads)
        assert sim.gateway.payload_cache.discard(key)
        report = sim.tick()
        assert report.prefetched == (HOT,)
        assert report.acted
        assert sim.gateway.payload_cache.contains(key)
        assert sim.controller.was_prefetched(key)
        assert sim.counter("prefetch_builds") == 1
        response = sim.serve(HOT)
        assert response.payload_cache_hit
        assert sim.counter("prefetch_hits") == 1

    def test_resident_payloads_are_not_rebuilt(self, sim):
        for _ in range(5):
            sim.serve(HOT)
        report = sim.tick()
        assert report.prefetched == ()
        assert sim.counter("prefetch_builds") == 0

    def test_prefetch_limit_zero_disables_prefetch(self, control_pool):
        config = ControllerConfig(popularity_halflife_s=2.5, prefetch_limit=0)
        with SimHarness(control_pool, controller_config=config) as sim:
            for _ in range(5):
                sim.serve(HOT)
            sim.gateway.payload_cache.discard(payload_key(HOT, "float32"))
            assert sim.tick().prefetched == ()

    def test_cold_queries_never_prefetched(self, sim):
        sim.serve(("c2", "c3"))  # one hit, then idle past many half-lives
        sim.gateway.payload_cache.discard(payload_key(("c2", "c3"), "float32"))
        sim.clock.advance(60.0)
        assert sim.tick().prefetched == ()

    def test_tick_without_signals_is_a_noop(self, sim):
        report = sim.tick()
        assert not report.acted
        assert report.mean_fanout == 0.0


class TestDecay:
    def test_long_idle_decays_popularity(self, sim):
        for _ in range(8):
            sim.serve(HOT)
        before = sim.controller.composite_score(HOT)
        sim.clock.advance(100 * sim.controller.config.popularity_halflife_s)
        after = sim.controller.composite_score(HOT)
        assert before > 0.0
        assert after < before * 1e-9

    def test_rotation_shifts_hot_ranking(self, sim):
        for _ in range(6):
            sim.serve(HOT)
        sim.clock.advance(10.0)  # four half-lives
        for _ in range(6):
            sim.serve(("c2", "c3"))
        assert sim.controller.hot_queries(1)[0][0] == ("c2", "c3")


class TestJournal:
    def test_acting_tick_emits_autotune_event(self, sim):
        JOURNAL.reset()
        JOURNAL.enable(service="test")
        try:
            for _ in range(5):
                sim.serve(HOT)
            sim.gateway.payload_cache.discard(payload_key(HOT, "float32"))
            sim.tick()
            kinds = [e["kind"] for e in JOURNAL.events()]
            assert "autotune" in kinds
            event = [e for e in JOURNAL.events() if e["kind"] == "autotune"][-1]
            assert event["prefetched"] == [list(HOT)]
        finally:
            JOURNAL.disable()
            JOURNAL.reset()

    def test_quiet_tick_emits_nothing(self, sim):
        JOURNAL.reset()
        JOURNAL.enable(service="test")
        try:
            sim.tick()
            assert "autotune" not in [e["kind"] for e in JOURNAL.events()]
        finally:
            JOURNAL.disable()
            JOURNAL.reset()


class TestDeterminism:
    def _run_once(self, pool):
        trace = [(HOT, "float32"), (("c2", "c3"), "float32")] * 30 + [
            (("c0", "c2"), "float32"),
            (("c1", "c3"), "float32"),
        ]
        with SimHarness(pool) as sim:
            reports = sim.run(trace, tick_every=10)
            stats = sim.payload_stats()
            snap = sim.controller.snapshot()
        return reports, stats, snap

    def test_identical_runs_produce_identical_decisions(self, control_pool):
        first = self._run_once(control_pool)
        second = self._run_once(control_pool)
        assert first[0] == second[0]  # every TickReport identical
        assert first[1] == second[1]  # cache stats identical
        assert first[2] == second[2]  # controller gauges identical


class TestTelemetry:
    def test_polls_surface_controller_series(self, sim):
        sim.poll()  # baseline
        for _ in range(5):
            sim.serve(HOT)
        sim.gateway.payload_cache.discard(payload_key(HOT, "float32"))
        sim.tick()
        sim.serve(HOT)  # a prefetch hit
        produced = sim.poll()
        rates = produced["serving"]
        assert rates["rate.prefetch_builds"] > 0
        assert rates["rate.prefetch_hits"] > 0
        assert sim.poller.store.last("serving.up") == 1.0


class TestReplication:
    """Fan-out feedback → hot-expert self-replication, on 2 in-process shards."""

    DT = 0.05

    @pytest.fixture()
    def cluster(self, control_pool):
        from repro.cluster.gateway import ClusterConfig, ClusterGateway

        clock = FakeClock()
        controller = CacheController(
            ControllerConfig(popularity_halflife_s=2.5), clock=clock
        )
        gateway = ClusterGateway(
            control_pool,
            ClusterConfig(num_shards=2, workers_per_shard=1),
            controller=controller,
        )
        try:
            yield gateway, controller, clock
        finally:
            gateway.close()

    def _cross_shard_pair(self, cluster):
        names = sorted(cluster.pool.expert_names())
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if not set(cluster.router.shards_for(a)) & set(
                    cluster.router.shards_for(b)
                ):
                    return (a, b)
        pytest.fail("no cross-shard pair in placement")

    def _drive(self, gateway, clock, pair, n):
        for _ in range(n):
            clock.advance(self.DT)
            gateway.serve(pair)

    def test_sustained_fanout_replicates_hottest_task(self, cluster):
        gateway, controller, clock = cluster
        pair = self._cross_shard_pair(gateway)
        self._drive(gateway, clock, pair, 6)
        report = controller.tick()
        assert len(report.replicated) == 1
        task, copies = report.replicated[0]
        assert task in pair and copies == 2
        assert gateway.router.replication_for(task) == 2
        assert len(gateway.router.shards_for(task)) == 2
        assert report.mean_fanout == pytest.approx(2.0)
        assert gateway.metrics.counter("autotune_replications") == 1
        # the pair is now co-resident: the next request fans out to 1 shard
        before = dict(gateway.metrics.fanout_histogram())
        self._drive(gateway, clock, pair, 1)
        after = gateway.metrics.fanout_histogram()
        assert after.get(1, 0) == before.get(1, 0) + 1

    def test_cooldown_limits_replication_rate(self, cluster):
        gateway, controller, clock = cluster
        first = self._cross_shard_pair(gateway)
        self._drive(gateway, clock, first, 6)
        assert controller.tick().replicated
        second = self._cross_shard_pair(gateway)
        self._drive(gateway, clock, second, 6)
        # still inside replicate_cooldown_s: fan-out is high, but no action
        assert controller.tick().replicated == ()
        clock.advance(controller.config.replicate_cooldown_s + 1.0)
        self._drive(gateway, clock, second, 6)
        assert controller.tick().replicated
        assert gateway.metrics.counter("autotune_replications") == 2

    def test_low_fanout_never_replicates(self, cluster):
        gateway, controller, clock = cluster
        names = sorted(gateway.pool.expert_names())
        single = (names[0],)
        self._drive(gateway, clock, single, 6)
        report = controller.tick()
        assert report.replicated == ()
        assert report.mean_fanout == pytest.approx(1.0)


class TestLifecycle:
    def test_start_stop_without_sleeping(self, sim):
        sim.controller.start(interval_s=3600.0)
        assert sim.controller._thread is not None
        sim.controller.start()  # idempotent while running
        sim.controller.stop()
        assert sim.controller._thread is None
        sim.controller.stop()  # idempotent once stopped

    def test_start_rejects_bad_interval(self, sim):
        with pytest.raises(ValueError):
            sim.controller.start(interval_s=0)

    def test_context_manager_stops_loop(self, control_pool):
        clock = FakeClock()
        with CacheController(clock=clock) as controller:
            controller.start(interval_s=3600.0)
        assert controller._thread is None
