"""Unit tests for the self-tuning bench machinery (no pool, no serving).

The heavy two-arm driver runs in ``benchmarks/bench_self_tuning.py``;
here the pure pieces — the shifting-Zipf trace generator, the report
dataclasses, and the :func:`verify_report` gate — are pinned down with
hand-built inputs.
"""

import itertools

import pytest

from repro.control import (
    SelfTuningReport,
    StepClock,
    shifting_workload_trace,
    verify_report,
)
from repro.control.bench import ArmReport

TASKS = [f"t{i}" for i in range(8)]


class TestStepClock:
    def test_advances_explicitly(self):
        clock = StepClock(start=2.0)
        assert clock() == 2.0
        clock.advance(0.5)
        clock.advance(0.5)
        assert clock() == 3.0


class TestShiftingWorkloadTrace:
    def test_same_seed_is_bit_identical(self):
        a = shifting_workload_trace(TASKS, requests=100, hot_size=4, seed=7)
        b = shifting_workload_trace(TASKS, requests=100, hot_size=4, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a, _ = shifting_workload_trace(TASKS, requests=100, hot_size=4, seed=0)
        b, _ = shifting_workload_trace(TASKS, requests=100, hot_size=4, seed=1)
        assert a != b

    def test_rotation_at_midpoint_with_disjoint_hot_sets(self):
        trace, rotation_at = shifting_workload_trace(
            TASKS, requests=200, hot_size=4, hot_fraction=1.0, seed=3
        )
        assert rotation_at == 100
        phase1 = set(q for q, _ in trace[:rotation_at])
        phase2 = set(q for q, _ in trace[rotation_at:])
        assert len(phase1) <= 4 and len(phase2) <= 4
        assert not phase1 & phase2  # the hot sets are disjoint pairs

    def test_queries_are_canonical_combinations(self):
        trace, _ = shifting_workload_trace(TASKS, requests=150, hot_size=4, seed=5)
        universe = set(
            itertools.chain(
                ((n,) for n in TASKS),
                itertools.combinations(sorted(TASKS), 2),
                itertools.combinations(sorted(TASKS), 3),
            )
        )
        assert all(q in universe for q, _ in trace)
        assert all(t == "float32" for _, t in trace)

    def test_too_few_tasks_rejected(self):
        with pytest.raises(ValueError, match="disjoint hot sets"):
            shifting_workload_trace(["a", "b", "c"], hot_size=8)

    def test_too_few_requests_rejected(self):
        with pytest.raises(ValueError, match="requests"):
            shifting_workload_trace(TASKS, requests=1)


def _arm(label, qps, hit_rate, **overrides):
    fields = dict(
        label=label,
        requests=100,
        elapsed_s=1.0,
        qps=qps,
        payload_hit_rate=hit_rate,
        payload_hits=int(100 * hit_rate),
        payload_misses=100 - int(100 * hit_rate),
        evictions=10,
        score_evictions=0,
        rejections=0,
        prefetch_builds=0,
        prefetch_hits=0,
    )
    fields.update(overrides)
    return ArmReport(**fields)


def _report(static, tuned):
    return SelfTuningReport(
        static=static,
        tuned=tuned,
        rotation_at=50,
        hot_size=8,
        budget_payloads=6,
        budget_bytes=600,
        payload_bytes=100,
        ticks=4,
    )


GOOD_TUNED = dict(score_evictions=20, rejections=30, prefetch_builds=5, prefetch_hits=9)


class TestReport:
    def test_derived_ratios(self):
        report = _report(_arm("s", 100.0, 0.5), _arm("t", 120.0, 0.6, **GOOD_TUNED))
        assert report.hit_rate_gain == pytest.approx(0.1)
        assert report.qps_ratio == pytest.approx(1.2)
        d = report.to_dict()
        assert d["qps_ratio"] == 1.2
        assert d["tuned"]["prefetch_builds"] == 5

    def test_zero_static_qps_is_safe(self):
        report = _report(_arm("s", 0.0, 0.5), _arm("t", 120.0, 0.6))
        assert report.qps_ratio == 0.0

    def test_render_is_a_two_arm_table(self):
        report = _report(_arm("s", 100.0, 0.5), _arm("t", 120.0, 0.6, **GOOD_TUNED))
        text = report.render()
        assert "static-lru" not in text  # labels come from the arms
        assert "s" in text and "t" in text
        assert "qps_ratio=1.20x" in text
        assert "gain=+10.0%" in text


class TestVerifyReport:
    def test_winning_report_passes_unrelaxed(self):
        report = _report(_arm("s", 100.0, 0.5), _arm("t", 120.0, 0.6, **GOOD_TUNED))
        verify_report(report, relaxed=False)

    def test_hit_rate_must_strictly_improve(self):
        report = _report(_arm("s", 100.0, 0.6), _arm("t", 120.0, 0.6, **GOOD_TUNED))
        with pytest.raises(AssertionError, match="hit rate"):
            verify_report(report, relaxed=False)

    def test_controller_must_prefetch(self):
        tuned = dict(GOOD_TUNED, prefetch_builds=0)
        report = _report(_arm("s", 100.0, 0.5), _arm("t", 120.0, 0.6, **tuned))
        with pytest.raises(AssertionError, match="never prefetched"):
            verify_report(report, relaxed=False)

    def test_score_hook_must_act(self):
        tuned = dict(GOOD_TUNED, score_evictions=0, rejections=0)
        report = _report(_arm("s", 100.0, 0.5), _arm("t", 120.0, 0.6, **tuned))
        with pytest.raises(AssertionError, match="score hook"):
            verify_report(report, relaxed=False)

    def test_unrelaxed_requires_qps_win(self):
        report = _report(_arm("s", 100.0, 0.5), _arm("t", 99.0, 0.6, **GOOD_TUNED))
        with pytest.raises(AssertionError, match="qps"):
            verify_report(report, relaxed=False)

    def test_relaxed_allows_qps_loss_but_not_collapse(self):
        report = _report(_arm("s", 100.0, 0.5), _arm("t", 60.0, 0.6, **GOOD_TUNED))
        verify_report(report, relaxed=True)  # 0.6x: slower but alive
        collapsed = _report(_arm("s", 100.0, 0.5), _arm("t", 40.0, 0.6, **GOOD_TUNED))
        with pytest.raises(AssertionError, match="collapsed"):
            verify_report(collapsed, relaxed=True)
