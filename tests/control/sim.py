"""Deterministic simulation harness for the self-tuning control plane.

Every moving part of the control loop takes an injected clock, so the
whole stack — gateway (or cluster), :class:`repro.control.CacheController`,
and :class:`repro.obs.timeline.TelemetryPoller` — can be stepped
synchronously from a single :class:`FakeClock`.  Nothing here sleeps and
no background thread runs: a test *is* the scheduler.  ``serve`` advances
simulated time by one fixed ``dt`` per request (the same convention the
``bench_self_tuning`` benchmark uses), and ``run`` interleaves controller
ticks and telemetry polls at fixed request strides, recording every
:class:`~repro.control.TickReport` and poll diff for assertions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.control import CacheController, ControllerConfig, TickReport
from repro.obs.timeline import TelemetryPoller
from repro.serving.gateway import GatewayConfig, ServingGateway

__all__ = ["FakeClock", "SimHarness"]


class FakeClock:
    """Explicitly-advanced monotonic clock shared by every sim component."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("simulated time cannot go backwards")
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class SimHarness:
    """One gateway + controller + poller stepped on one fake clock.

    Parameters
    ----------
    pool:
        The trained pool to serve.
    gateway_config:
        Defaults to a single-worker gateway (deterministic build order).
    controller_config:
        Defaults to a 2.5 sim-second popularity half-life (50 requests at
        the default ``dt``), matching the self-tuning benchmark.
    dt:
        Simulated seconds each ``serve``/``predict`` advances the clock.
    """

    def __init__(
        self,
        pool,
        *,
        gateway_config: Optional[GatewayConfig] = None,
        controller_config: Optional[ControllerConfig] = None,
        dt: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.clock = FakeClock()
        self.dt = dt
        self.controller = CacheController(
            controller_config or ControllerConfig(popularity_halflife_s=2.5),
            clock=self.clock,
            seed=seed,
        )
        self.gateway = ServingGateway(
            pool,
            gateway_config or GatewayConfig(max_workers=1),
            controller=self.controller,
        )
        self.poller = TelemetryPoller.for_gateway(self.gateway, clock=self.clock)
        self.reports: List[TickReport] = []
        self.polls: List[Dict[str, Dict[str, float]]] = []

    # ------------------------------------------------------------------
    def serve(self, names: Sequence[str], transport: str = "float32"):
        """Advance one ``dt`` and serve one request."""
        self.clock.advance(self.dt)
        return self.gateway.serve(names, transport)

    def tick(self) -> TickReport:
        """One synchronous control-loop step (recorded in ``reports``)."""
        report = self.controller.tick()
        self.reports.append(report)
        return report

    def poll(self) -> Dict[str, Dict[str, float]]:
        """One synchronous telemetry sweep (recorded in ``polls``).

        Advances a minimal step first so consecutive polls never see a
        zero-elapsed diff window.
        """
        self.clock.advance(self.dt)
        produced = self.poller.poll_once()
        self.polls.append(produced)
        return produced

    def run(
        self,
        trace: Sequence[Tuple[Sequence[str], str]],
        *,
        tick_every: int = 25,
        poll_every: int = 0,
    ) -> List[TickReport]:
        """Drive a ``[(names, transport), ...]`` trace through the loop.

        Ticks the controller every ``tick_every`` requests and (when
        ``poll_every`` > 0) polls telemetry every ``poll_every`` requests,
        exactly as a deployed stack would — minus the threads.
        """
        started = len(self.reports)
        for i, (names, transport) in enumerate(trace):
            self.serve(names, transport)
            if tick_every and (i + 1) % tick_every == 0:
                self.tick()
            if poll_every and (i + 1) % poll_every == 0:
                self.poll()
        return self.reports[started:]

    # ------------------------------------------------------------------
    def payload_stats(self):
        return self.gateway.payload_cache.stats()

    def counter(self, name: str) -> int:
        return self.gateway.metrics.counter(name)

    def close(self) -> None:
        self.gateway.close()

    def __enter__(self) -> "SimHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
