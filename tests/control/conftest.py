"""Fixtures for the self-tuning control-plane tests."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def control_pool(micro_pool):
    """The shared micro pool (4 primitive tasks → 6 distinct pairs)."""
    pool, _data, _oracle = micro_pool
    return pool
