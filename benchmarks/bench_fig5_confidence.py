"""Figure 5: confidence histograms on out-of-distribution samples.

Shape to reproduce: Scratch and Transfer experts are overconfident on OOD
inputs (high-confidence mode), while CKD experts sit in a low-confidence
mode (paper: 0.3-0.4) — the property that makes experts composable.
Timed kernel: the OOD confidence-profile computation.
"""

import numpy as np
import pytest

from repro.core import ood_confidence_profile
from repro.eval import confidence_figure, render_histogram


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_fig5(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    fig = confidence_figure(track, store)
    blocks = []
    for method in ("scratch", "transfer", "ckd"):
        rec = fig[method]
        blocks.append(
            render_histogram(
                rec["histogram"],
                rec["bin_edges"],
                title=(
                    f"Figure 5 ({track.name}, task={fig['task']}) — {method}: "
                    f"mean={rec['mean']:.2f}, P(conf>0.9)={rec['overconfident_rate']:.2f}, "
                    f"mode={rec['mode_bin'][0]:.1f}-{rec['mode_bin'][1]:.1f}"
                ),
            )
        )
    emit(f"fig5_{track.name}", "\n\n".join(blocks))

    # Shape: CKD is the least confident on OOD inputs.
    assert fig["ckd"]["mean"] < fig["scratch"]["mean"]
    assert fig["ckd"]["mean"] < fig["transfer"]["mean"]
    assert fig["ckd"]["overconfident_rate"] <= fig["scratch"]["overconfident_rate"]

    # Timed kernel: one OOD profile over the test set.
    pool = store.pool(track)
    data = store.dataset(track)
    task_name = fig["task"]
    model, _ = pool.consolidate([task_name])
    task = data.hierarchy.task(task_name)
    benchmark(lambda: ood_confidence_profile(model, data.test, task))
