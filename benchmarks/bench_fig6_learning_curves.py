"""Figure 6: accuracy-vs-wall-clock learning curves in the service phase.

Shape to reproduce: every training-based method needs seconds-to-minutes
of wall-clock to reach its best accuracy; PoE reaches its accuracy at
(effectively) time zero.  The timed kernel contrasts the two directly:
one epoch of CKD service training vs a full PoE consolidation.
"""

import pytest

from repro.eval import learning_curves, render_curves
from repro.eval.service import run_service_method


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_fig6(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    curves = learning_curves(track, store, n_q=5)
    emit(
        f"fig6_{track.name}",
        render_curves(
            curves,
            title=f"Figure 6 ({track.name}): learning curves in the service phase, n(Q)=5",
        ),
    )

    # Shape: PoE's curve is a single point at ~0 seconds whose accuracy is
    # competitive with the trained baselines' best.
    poe_time, poe_acc = curves["poe"][0]
    assert poe_time < 0.05
    for method in ("sd+scratch", "uhc+scratch"):
        best = max(acc for _, acc in curves[method])
        assert poe_acc > best, f"poe ({poe_acc}) should beat {method} ({best})"
    # training methods genuinely pay wall-clock
    assert max(t for t, _ in curves["scratch"]) > 10 * poe_time

    # Timed kernel: PoE consolidation at n(Q)=5 (the 'curve' of PoE).
    pool = store.pool(track)
    data = store.dataset(track)
    tasks = track.selected_tasks(data.hierarchy)[:5]
    benchmark(lambda: pool.consolidate(list(tasks)))
