"""Prediction throughput: fused execution vs the autograd engine.

Two inference claims to defend at ``n(Q) = 8``, single thread:

* the fused head bank (:class:`repro.models.FusedHeadBank` — heads folded
  into the batch dimension, one stacked GEMM per layer, BN folded to
  affines) executes the multi-head stage at least **3x** faster than the
  per-head Python loop;
* the compiled eval-mode trunk (:class:`repro.nn.fused.FusedTrunk` — the
  same NHWC lowering applied to the shared library) runs at least **2.5x**
  faster than the autograd trunk at batch 64, which is what lifts *cold*
  end-to-end predictions (no warm caches) past 3.5x over the loop path.

Both fused paths must be ``allclose`` to their reference.  The
trunk-feature cache rides along: end-to-end ``predict()`` with warm
features skips the trunk forward entirely, and the benchmark reports the
cold/warm/result-cache split plus the cache hit rate.

Results append to ``BENCH_predict.json`` (a run per invocation), so CI
artifact uploads accumulate the perf trajectory PR over PR.

Self-contained: builds a micro pool inline (~seconds).  Run with::

    pytest benchmarks/bench_predict_throughput.py -q -s

``REPRO_BENCH_RELAX=1`` (CI smoke) reports timings but gates only on
correctness and a >1x sanity floor.
"""

import os

import numpy as np
import pytest

from repro.eval import render_table
from repro.serving import (
    GatewayConfig,
    ServingGateway,
    append_benchmark_record,
    build_demo_pool,
    predict_report_rows,
    run_predict_benchmark,
)

N_HEADS = 8
BATCH_SIZE = 64
REPS = 30
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_predict.json")


@pytest.fixture(scope="module")
def predict_pool():
    pool, data = build_demo_pool(num_tasks=N_HEADS, train_per_class=20, epochs=4, seed=13)
    return pool, data


def test_fused_3x_and_allclose(predict_pool, emit):
    """Acceptance headline: >=3x fused vs loop at n(Q)=8, logits allclose."""
    pool, data = predict_pool
    record = run_predict_benchmark(
        pool, data.test.images, n_heads=N_HEADS, batch_size=BATCH_SIZE, reps=REPS
    )
    append_benchmark_record(
        os.path.abspath(TRAJECTORY_PATH), record, label="bench_predict_throughput"
    )
    rows, title = predict_report_rows(record)
    emit(
        "predict_throughput",
        render_table(["Path", "ms/call", "speedup"], rows, title=title),
    )
    assert record["allclose"], (
        f"fused logits diverged from the loop path "
        f"(max abs diff {record['max_abs_diff']:.2e})"
    )
    assert record["trunk"]["allclose"], (
        f"compiled trunk diverged from the autograd trunk "
        f"(max abs diff {record['trunk']['max_abs_diff']:.2e})"
    )
    speedup = record["heads"]["speedup"]
    trunk_speedup = record["trunk"]["speedup"]
    if os.environ.get("REPRO_BENCH_RELAX"):
        # shared-runner smoke mode (CI): report, don't gate on wall clock
        assert speedup > 1.0, f"fused execution slower than the loop ({speedup:.2f}x)"
        assert trunk_speedup > 1.0, (
            f"compiled trunk slower than autograd ({trunk_speedup:.2f}x)"
        )
    else:
        assert speedup >= 3.0, f"fused speedup only {speedup:.2f}x"
        assert trunk_speedup >= 2.5, (
            f"compiled-trunk speedup only {trunk_speedup:.2f}x (claim: >=2.5x)"
        )


def test_trunk_cache_hit_rate_impact(predict_pool, emit):
    """Warm trunk features make repeat predictions cheaper, never wronger."""
    pool, data = predict_pool
    names = sorted(pool.expert_names())[:N_HEADS]
    x = data.test.images[:BATCH_SIZE]
    # result cache off: this test isolates the trunk-feature tier (a
    # repeat request would otherwise hit the result cache first)
    with ServingGateway(
        pool, GatewayConfig(max_workers=1, result_cache_bytes=0)
    ) as gateway:
        cold = gateway.predict(x, names)
        warm = gateway.predict(x, names)
        stats = gateway.trunk_cache.stats()
    assert not cold.trunk_cache_hit and warm.trunk_cache_hit
    assert np.array_equal(cold.class_ids, warm.class_ids)
    assert stats.hits >= 1
    emit(
        "predict_trunk_cache",
        render_table(
            ["Request", "service ms", "trunk hit"],
            [
                ["cold", f"{1e3 * cold.service_seconds:.3f}", "no"],
                ["warm", f"{1e3 * warm.service_seconds:.3f}", "yes"],
            ],
            title=f"Trunk-feature cache (hit rate {stats.hit_rate:.0%})",
        ),
    )
    if not os.environ.get("REPRO_BENCH_RELAX"):
        assert warm.service_seconds <= cold.service_seconds


def test_predict_kernel(benchmark, predict_pool):
    """Timed kernel: one warm fused prediction through the gateway.

    Result cache off so the kernel times warm-trunk + fused heads, not a
    memoized answer.
    """
    pool, data = predict_pool
    names = sorted(pool.expert_names())[:N_HEADS]
    x = data.test.images[:BATCH_SIZE]
    with ServingGateway(pool, GatewayConfig(result_cache_bytes=0)) as gateway:
        gateway.predict(x, names)
        benchmark(lambda: gateway.predict(x, names))
