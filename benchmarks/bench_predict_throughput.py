"""Prediction throughput: fused multi-head execution vs the per-head loop.

The inference claim to defend: at ``n(Q) = 8`` the fused head bank
(:class:`repro.models.FusedHeadBank` — heads folded into the batch
dimension, one stacked GEMM per layer, BN folded to affines) executes the
multi-head stage at least **3x** faster than the per-head Python loop on a
single thread, while producing logits ``allclose`` to the loop path.  The
trunk-feature cache rides along: end-to-end ``predict()`` with warm
features skips the trunk forward entirely, and the benchmark reports the
cold/warm split plus the cache hit rate.

Results append to ``BENCH_predict.json`` (a run per invocation), so CI
artifact uploads accumulate the perf trajectory PR over PR.

Self-contained: builds a micro pool inline (~seconds).  Run with::

    pytest benchmarks/bench_predict_throughput.py -q -s

``REPRO_BENCH_RELAX=1`` (CI smoke) reports timings but gates only on
correctness and a >1x sanity floor.
"""

import os

import numpy as np
import pytest

from repro.eval import render_table
from repro.serving import (
    GatewayConfig,
    ServingGateway,
    append_benchmark_record,
    build_demo_pool,
    predict_report_rows,
    run_predict_benchmark,
)

N_HEADS = 8
BATCH_SIZE = 64
REPS = 30
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_predict.json")


@pytest.fixture(scope="module")
def predict_pool():
    pool, data = build_demo_pool(num_tasks=N_HEADS, train_per_class=20, epochs=4, seed=13)
    return pool, data


def test_fused_3x_and_allclose(predict_pool, emit):
    """Acceptance headline: >=3x fused vs loop at n(Q)=8, logits allclose."""
    pool, data = predict_pool
    record = run_predict_benchmark(
        pool, data.test.images, n_heads=N_HEADS, batch_size=BATCH_SIZE, reps=REPS
    )
    append_benchmark_record(
        os.path.abspath(TRAJECTORY_PATH), record, label="bench_predict_throughput"
    )
    rows, title = predict_report_rows(record)
    emit(
        "predict_throughput",
        render_table(["Path", "ms/call", "speedup"], rows, title=title),
    )
    assert record["allclose"], (
        f"fused logits diverged from the loop path "
        f"(max abs diff {record['max_abs_diff']:.2e})"
    )
    speedup = record["heads"]["speedup"]
    if os.environ.get("REPRO_BENCH_RELAX"):
        # shared-runner smoke mode (CI): report, don't gate on wall clock
        assert speedup > 1.0, f"fused execution slower than the loop ({speedup:.2f}x)"
    else:
        assert speedup >= 3.0, f"fused speedup only {speedup:.2f}x"


def test_trunk_cache_hit_rate_impact(predict_pool, emit):
    """Warm trunk features make repeat predictions cheaper, never wronger."""
    pool, data = predict_pool
    names = sorted(pool.expert_names())[:N_HEADS]
    x = data.test.images[:BATCH_SIZE]
    with ServingGateway(pool, GatewayConfig(max_workers=1)) as gateway:
        cold = gateway.predict(x, names)
        warm = gateway.predict(x, names)
        stats = gateway.trunk_cache.stats()
    assert not cold.trunk_cache_hit and warm.trunk_cache_hit
    assert np.array_equal(cold.class_ids, warm.class_ids)
    assert stats.hits >= 1
    emit(
        "predict_trunk_cache",
        render_table(
            ["Request", "service ms", "trunk hit"],
            [
                ["cold", f"{1e3 * cold.service_seconds:.3f}", "no"],
                ["warm", f"{1e3 * warm.service_seconds:.3f}", "yes"],
            ],
            title=f"Trunk-feature cache (hit rate {stats.hit_rate:.0%})",
        ),
    )
    if not os.environ.get("REPRO_BENCH_RELAX"):
        assert warm.service_seconds <= cold.service_seconds


def test_predict_kernel(benchmark, predict_pool):
    """Timed kernel: one warm fused prediction through the gateway."""
    pool, data = predict_pool
    names = sorted(pool.expert_names())[:N_HEADS]
    x = data.test.images[:BATCH_SIZE]
    with ServingGateway(pool) as gateway:
        gateway.predict(x, names)
        benchmark(lambda: gateway.predict(x, names))
