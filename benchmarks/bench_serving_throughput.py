"""Serving throughput: queries/sec and tail latency vs. cache budget.

The serving claim to defend: with the model+payload caches on, the gateway
sustains at least 5x the queries/sec of the cache-less configuration under
a Zipfian (skewed) workload — serialization is the dominant cost and the
cache tiers exist precisely to amortize it across repeated/permuted
queries.  Also reports how tail latency responds as the payload-cache byte
budget shrinks (evictions bite progressively, hottest queries stay fast).

Self-contained: builds a micro pool inline (~seconds), no artifact store
required.  Run with::

    pytest benchmarks/bench_serving_throughput.py -q -s
"""

import os

import pytest

from repro.serving import (
    GatewayConfig,
    ServingGateway,
    ZipfianWorkload,
    build_demo_pool,
    run_closed_loop,
)
from repro.eval import render_table

CLIENTS = 6
REQUESTS_PER_CLIENT = 60


@pytest.fixture(scope="module")
def serving_pool():
    pool, _ = build_demo_pool(num_tasks=5, train_per_class=25, epochs=5, seed=11)
    return pool


@pytest.fixture(scope="module")
def workload(serving_pool):
    return ZipfianWorkload(
        serving_pool.expert_names(),
        max_query_size=3,
        skew=1.1,
        universe_size=24,
        seed=3,
    )


def _drive(pool, workload, model_bytes, payload_bytes, warmup=True):
    config = GatewayConfig(
        max_workers=CLIENTS, model_cache_bytes=model_bytes, payload_cache_bytes=payload_bytes
    )
    with ServingGateway(pool, config) as gateway:
        if warmup:
            # steady state: prime whatever fits the budget, then measure
            for tasks, transport in workload.sample(60, seed=17):
                gateway.serve(tasks, transport)
            gateway.payload_cache.reset_stats()
            gateway.model_cache.reset_stats()
        report = run_closed_loop(
            gateway,
            workload,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            seed=29,
        )
    return report


def test_caches_give_5x_throughput(serving_pool, workload, emit):
    """Acceptance headline: >=5x sustained qps with caches vs. without."""
    cached = _drive(serving_pool, workload, 128 << 20, 128 << 20)
    uncached = _drive(serving_pool, workload, 0, 0, warmup=False)
    speedup = cached.throughput_qps / uncached.throughput_qps
    rows = [
        [
            name,
            f"{r.throughput_qps:,.0f}",
            f"{1e3 * r.latency['p50']:.3f}",
            f"{1e3 * r.latency['p95']:.3f}",
            f"{1e3 * r.latency['p99']:.3f}",
            f"{r.payload_hit_rate:.1%}",
        ]
        for name, r in (("caches on", cached), ("caches off", uncached))
    ]
    rows.append(["speedup", f"{speedup:.1f}x", "", "", "", ""])
    emit(
        "serving_throughput",
        render_table(
            ["Config", "qps", "p50 ms", "p95 ms", "p99 ms", "payload hits"],
            rows,
            title="Serving throughput: cache tiers on vs. off (Zipfian, skew=1.1)",
        ),
    )
    if os.environ.get("REPRO_BENCH_RELAX"):
        # shared-runner smoke mode (CI): report, don't gate on wall clock
        assert speedup > 1.0, f"caches made serving slower ({speedup:.2f}x)"
    else:
        assert speedup >= 5.0, f"cache speedup only {speedup:.2f}x"


def test_tail_latency_vs_cache_budget(serving_pool, workload, emit):
    """Tail latency degrades gracefully as the payload budget shrinks."""
    budgets = [128 << 20, 1 << 20, 256 << 10, 0]
    rows = []
    by_budget = {}
    for budget in budgets:
        report = _drive(serving_pool, workload, 128 << 20, budget)
        by_budget[budget] = report
        rows.append(
            [
                f"{budget >> 10} KiB" if budget else "off",
                f"{report.throughput_qps:,.0f}",
                f"{1e3 * report.latency['p50']:.3f}",
                f"{1e3 * report.latency['p99']:.3f}",
                f"{report.payload_hit_rate:.1%}",
            ]
        )
    emit(
        "serving_budget_sweep",
        render_table(
            ["Payload budget", "qps", "p50 ms", "p99 ms", "hit rate"],
            rows,
            title="Tail latency vs. payload-cache byte budget",
        ),
    )
    # more budget never hurts sustained throughput (generous 2x slack for noise)
    assert by_budget[128 << 20].throughput_qps >= by_budget[0].throughput_qps
    assert by_budget[128 << 20].payload_hit_rate >= by_budget[256 << 10].payload_hit_rate


def test_serve_kernel(benchmark, serving_pool, workload):
    """Timed kernel: one warm cached serve through the full gateway path."""
    with ServingGateway(serving_pool) as gateway:
        tasks, transport = workload.sample(1, seed=41)[0]
        gateway.serve(tasks, transport)
        benchmark(lambda: gateway.serve(tasks, transport))
