"""Table 2: model specialization — Oracle / KD / Scratch / Transfer / CKD.

Regenerates the accuracy (mean±std over the six primitive tasks) and model
cost columns; the expected *shape* is the paper's ordering

    CKD > Transfer > Scratch > KD   (specialists),  Oracle on top,

with specialists roughly two orders of magnitude smaller than the oracle.
The timed kernel is specialist inference (the deployment-side win).
"""

import numpy as np
import pytest

from repro.distill import batched_forward
from repro.eval import format_count, render_table, specialization_table


def rows_for(track, store):
    rows = []
    for r in specialization_table(track, store):
        rows.append(
            [
                r["method"].upper() if r["method"] != "oracle" else "Oracle",
                r["type"],
                r["arch"],
                f"{100 * r['accuracy_mean']:.2f}±{100 * r['accuracy_std']:.1f}",
                format_count(r["flops"]),
                format_count(r["params"]),
            ]
        )
    return rows


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_table2(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    rows = rows_for(track, store)
    emit(
        f"table2_{track.name}",
        render_table(
            ["Method", "Type", "Architecture", "Acc.", "FLOPs", "Params"],
            rows,
            title=f"Table 2 ({track.name}): specialization methods over 6 primitive tasks",
        ),
    )
    # Shape assertions: the paper's method ordering must hold.
    table = {r["method"]: r for r in specialization_table(track, store)}
    assert table["ckd"]["accuracy_mean"] > table["scratch"]["accuracy_mean"]
    assert table["ckd"]["accuracy_mean"] > table["kd"]["accuracy_mean"]
    assert table["oracle"]["accuracy_mean"] >= table["ckd"]["accuracy_mean"] - 0.02
    assert table["ckd"]["params"] * 10 < table["oracle"]["params"]

    # Timed kernel: CKD specialist inference over a test batch.
    pool = store.pool(track)
    data = store.dataset(track)
    task = track.selected_tasks(data.hierarchy)[0]
    model, _ = pool.consolidate([task])
    batch = data.test.images[:128]
    benchmark(lambda: batched_forward(model, batch, batch_size=128))
