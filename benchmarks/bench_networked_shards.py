"""Networked shards: multiprocess workers vs. in-process shards under load.

The claim to defend (ISSUE 5 / ROADMAP "Networked shards"): the cluster's
~5x-at-4-shards scaling was *parallelism on paper* — every in-process
shard shares the caller's GIL, so build-heavy traffic serializes no
matter how many shards exist.  Putting each shard in its own **forked
worker process** behind the ``repro.net`` socket protocol gives every
shard its own GIL; on a multi-core host, a 4-shard multiprocess cluster
must sustain **>=1.5x** the aggregate qps of the identical in-process
cluster on the same workload.

To make the GIL contention visible, both arms run with the cache tiers
disabled (every request pays consolidate + serialize — the Python-heavy
work that cannot overlap under one GIL) and drive ``submit`` in a closed
loop, so measured concurrency is the cluster's capacity.  Correctness
rides along: the networked cluster's payloads must be **bit-identical**
to the in-process cluster's.

With ``REPRO_BENCH_RELAX=1`` (noisy shared CI runners) the 1.5x gate
relaxes to a sanity floor.  An **un-relaxed** run demands >= 4 cores —
fewer cannot demonstrate multiprocess parallelism, only pay the socket
overhead — and on a smaller host it records a stamped skip into
``BENCH_networked.json`` (so the trajectory shows *why* there is no
entry) and skips instead of producing a meaningless verdict.  The CI
``multicore-networked`` job runs this file un-relaxed.

Self-contained: builds a micro pool inline (~seconds).  Run with::

    pytest benchmarks/bench_networked_shards.py -q -s

Appends a summary record to ``BENCH_networked.json`` (CI uploads it).
"""

import os

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterGateway
from repro.eval import render_table
from repro.net import NetworkedCluster
from repro.serving import (
    ZipfianWorkload,
    append_benchmark_record,
    build_demo_pool,
    run_closed_loop,
    run_metadata,
)

NUM_SHARDS = 4
WORKERS_PER_SHARD = 2
CLIENTS = 6
REQUESTS_PER_CLIENT = 25
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_networked.json")

RELAXED = bool(os.environ.get("REPRO_BENCH_RELAX"))
#: Cores below which an un-relaxed run cannot prove the 1.5x claim.
MULTICORE_FLOOR = 4
MULTICORE = (os.cpu_count() or 1) >= MULTICORE_FLOOR


@pytest.fixture(scope="module")
def net_bench_pool():
    return build_demo_pool(num_tasks=8, train_per_class=20, epochs=4, seed=13)


@pytest.fixture(scope="module")
def workload(net_bench_pool):
    pool, _ = net_bench_pool
    return ZipfianWorkload(
        pool.expert_names(),
        max_query_size=2,
        skew=1.1,
        universe_size=24,
        seed=5,
    )


def _config() -> ClusterConfig:
    # caches OFF in both arms: every request pays the build, which is the
    # GIL-bound work the worker processes exist to parallelize
    return ClusterConfig(
        num_shards=NUM_SHARDS,
        workers_per_shard=WORKERS_PER_SHARD,
        shard_model_cache_bytes=0,
        shard_payload_cache_bytes=0,
        composite_model_cache_bytes=0,
        composite_payload_cache_bytes=0,
        remote_head_cache_bytes=0,
        result_cache_bytes=0,
    )


def _drive(gateway, workload):
    return run_closed_loop(
        gateway,
        workload,
        clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        seed=31,
        via_submit=True,
    )


def test_networked_beats_in_process_on_multicore(net_bench_pool, workload, emit):
    """Acceptance headline: multiprocess >=1.5x in-process aggregate qps."""
    if not RELAXED and not MULTICORE:
        # stamp the skip into the trajectory so "no entry" is explained
        reason = (
            f"un-relaxed 1.5x gate needs >= {MULTICORE_FLOOR} cores, "
            f"host has {os.cpu_count()}"
        )
        append_benchmark_record(
            os.path.normpath(OUT_PATH),
            {
                "bench": "networked_shards",
                "skipped": True,
                "skip_reason": reason,
                "cpus": os.cpu_count(),
                "meta": run_metadata(),
            },
            label="skip",
        )
        pytest.skip(reason)
    pool, _ = net_bench_pool
    with ClusterGateway(pool, _config()) as cluster:
        in_process = _drive(cluster, workload)
    with NetworkedCluster(
        pool, _config(), connections_per_shard=WORKERS_PER_SHARD * 2
    ) as deployment:
        networked = _drive(deployment.gateway, workload)
        net_requests = deployment.gateway.metrics.counter("net_requests")
    assert deployment.fleet.leaked_processes() == []
    with NetworkedCluster(pool, _config(), async_transport=True) as deployment_async:
        networked_async = _drive(deployment_async.gateway, workload)
    assert deployment_async.fleet.leaked_processes() == []

    speedup = networked.throughput_qps / in_process.throughput_qps
    async_speedup = networked_async.throughput_qps / in_process.throughput_qps
    rows = [
        [
            label,
            f"{report.throughput_qps:,.0f}",
            f"{1e3 * report.latency['p50']:.2f}",
            f"{1e3 * report.latency['p99']:.2f}",
            f"{ratio:.2f}x",
        ]
        for label, report, ratio in (
            ("in-process shards", in_process, 1.0),
            ("worker processes", networked, speedup),
            ("worker processes + asyncio", networked_async, async_speedup),
        )
    ]
    emit(
        "networked_shards",
        render_table(
            ["Backend", "qps", "p50 ms", "p99 ms", "vs in-process"],
            rows,
            title=(
                f"Networked shards: {NUM_SHARDS} shards, caches off, "
                f"closed loop ({CLIENTS}x{REQUESTS_PER_CLIENT} via submit), "
                f"{os.cpu_count()} core(s)"
            ),
        ),
    )
    append_benchmark_record(
        os.path.normpath(OUT_PATH),
        {
            "bench": "networked_shards",
            "shards": NUM_SHARDS,
            "cpus": os.cpu_count(),
            "relaxed": RELAXED,
            "in_process_qps": in_process.throughput_qps,
            "networked_qps": networked.throughput_qps,
            "networked_async_qps": networked_async.throughput_qps,
            "speedup": speedup,
            "async_speedup": async_speedup,
            "net_requests": net_requests,
            "meta": run_metadata(
                replicas_per_shard=_config().replicas_per_shard,
                hedge_enabled=_config().replicas_per_shard > 1,
                chaos=False,
            ),
        },
        label="bench",
    )

    for report in (in_process, networked, networked_async):
        assert report.errors == 0
    if RELAXED:
        # single-core / noisy-runner floor: the socket hop may cost, but an
        # order-of-magnitude collapse means the transport is broken
        assert speedup > 0.2, f"networked serving collapsed ({speedup:.2f}x)"
    else:
        assert speedup >= 1.5, (
            f"multiprocess shards only {speedup:.2f}x in-process "
            f"on {os.cpu_count()} cores"
        )


def test_networked_payloads_bit_identical(net_bench_pool):
    """Same query, both backends: payload bytes must match exactly."""
    pool, _ = net_bench_pool
    config = ClusterConfig(num_shards=NUM_SHARDS, workers_per_shard=WORKERS_PER_SHARD)
    with ClusterGateway(pool, config) as cluster:
        names = sorted(pool.expert_names())
        first = names[0]
        partner = next(
            n for n in names[1:] if cluster.shards_of(n)[0] != cluster.shards_of(first)[0]
        )
        query = (first, partner)
        local_cross = cluster.serve(query).payload
        local_single = cluster.serve((first,)).payload
    with NetworkedCluster(pool, config) as deployment:
        assert deployment.gateway.serve(query).payload == local_cross
        assert deployment.gateway.serve((first,)).payload == local_single
    assert deployment.fleet.leaked_processes() == []


def test_networked_serve_kernel(benchmark, net_bench_pool, workload):
    """Timed kernel: one warm single-shard serve through a worker process."""
    pool, _ = net_bench_pool
    config = ClusterConfig(num_shards=NUM_SHARDS, workers_per_shard=WORKERS_PER_SHARD)
    with NetworkedCluster(pool, config) as deployment:
        tasks, transport = workload.sample(1, seed=41)[0]
        deployment.gateway.serve(tasks, transport)
        benchmark(lambda: deployment.gateway.serve(tasks, transport))
