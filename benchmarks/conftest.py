"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper from the artifact
store (training anything that is missing — the first run builds the full
matrix, subsequent runs reuse it) and times a representative kernel with
pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_FAST=1`` to regenerate everything at reduced budgets.
Rendered tables are printed and also written to ``.artifacts/reports/``.
"""

import os

import pytest

from repro.eval import ArtifactStore, cifar_track, tiny_track


@pytest.fixture(scope="session")
def store() -> ArtifactStore:
    return ArtifactStore()


@pytest.fixture(scope="session")
def tracks():
    """Both evaluation tracks (CIFAR-like and Tiny-ImageNet-like).

    ``REPRO_BENCH_TRACKS`` (comma-separated) restricts the set, e.g. to run
    only the CIFAR-like track while the other's artifacts are still
    building.  Benches parametrised over a missing index are skipped.
    """
    selected = os.environ.get("REPRO_BENCH_TRACKS", "synth-cifar,synth-tiny").split(",")
    all_tracks = {"synth-cifar": cifar_track(), "synth-tiny": tiny_track()}
    return [all_tracks[name] for name in selected if name in all_tracks]


@pytest.fixture(scope="session")
def report_dir(store):
    path = os.path.join(store.root, "reports")
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def emit(report_dir):
    """Print a rendered artifact and persist it under reports/."""

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        with open(os.path.join(report_dir, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return _emit
