"""Cluster scaling: sustained qps from 1 to N shards under Zipfian load.

The cluster claim to defend: with a **fixed per-shard envelope** (cache
bytes and worker threads per shard), a 4-shard cluster sustains at least
2x the queries/sec of a single shard on the same Zipfian workload.  Two
resources scale out with the shard count:

* **aggregate cache capacity** — each shard caches its own slice of the
  workload (and the front end sizes its composite tiers per shard), so a
  working set that thrashes one shard's budget fits the cluster's; this
  is what makes the speedup hold even on a single-core machine;
* **worker budget** — ``submit()`` dispatches onto ``workers_per_shard x
  num_shards`` threads, so on multi-core hosts serialization (zlib,
  GIL-releasing) also parallelizes.

The benchmark drives ``ClusterGateway.submit`` (closed loop,
``via_submit``) so measured concurrency is the cluster's capacity, not
the load generator's thread count.  Correctness rides along: a
cross-shard query's payload must rebuild to predictions **bit-identical**
to single-pool ``consolidate()``.

Self-contained: builds a micro pool inline (~seconds).  Run with::

    pytest benchmarks/bench_cluster_scaling.py -q -s

``REPRO_BENCH_RELAX=1`` (CI smoke) reports throughput but only gates on
correctness and a >1x sanity floor.
"""

import os

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterGateway
from repro.core import deserialize_task_model
from repro.distill import batched_forward
from repro.eval import render_table
from repro.serving import ZipfianWorkload, build_demo_pool, run_closed_loop

SHARD_COUNTS = (1, 2, 4)
#: Fixed per-shard envelope: the point of the benchmark is that capacity
#: scales out, so each shard's budget must NOT grow as shards are removed.
PER_SHARD_CACHE_BYTES = 512 << 10
WORKERS_PER_SHARD = 2
CLIENTS = 8
REQUESTS_PER_CLIENT = 75


@pytest.fixture(scope="module")
def cluster_pool():
    pool, data = build_demo_pool(
        num_tasks=8, train_per_class=20, epochs=4, seed=13
    )
    return pool, data


@pytest.fixture(scope="module")
def workload(cluster_pool):
    pool, _ = cluster_pool
    return ZipfianWorkload(
        pool.expert_names(),
        max_query_size=3,
        skew=1.1,
        universe_size=32,
        seed=5,
    )


def _config(num_shards: int) -> ClusterConfig:
    return ClusterConfig(
        num_shards=num_shards,
        workers_per_shard=WORKERS_PER_SHARD,
        shard_model_cache_bytes=PER_SHARD_CACHE_BYTES,
        shard_payload_cache_bytes=PER_SHARD_CACHE_BYTES,
        # the front end fronts N shards, so its composite tiers are sized
        # per shard too (a networked deployment would distribute them)
        composite_model_cache_bytes=PER_SHARD_CACHE_BYTES * num_shards,
        composite_payload_cache_bytes=PER_SHARD_CACHE_BYTES * num_shards,
    )


def _drive(pool, workload, num_shards: int):
    with ClusterGateway(pool, _config(num_shards)) as cluster:
        # steady state: prime every distinct query once, then measure
        for tasks in workload.queries:
            cluster.serve(tasks)
        for shard in cluster.shards:
            shard.gateway.payload_cache.reset_stats()
            shard.gateway.model_cache.reset_stats()
        cluster.payload_cache.reset_stats()
        cluster.model_cache.reset_stats()
        report = run_closed_loop(
            cluster,
            workload,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            seed=31,
            via_submit=True,
        )
        fanout = cluster.metrics.fanout_histogram()
    return report, fanout


def _mean_fanout(fanout) -> float:
    total = sum(fanout.values())
    return sum(k * v for k, v in fanout.items()) / total if total else 0.0


def test_cluster_scaling_2x(cluster_pool, workload, emit):
    """Acceptance headline: >=2x sustained qps at 4 shards vs. 1 shard."""
    pool, _ = cluster_pool
    results = {n: _drive(pool, workload, n) for n in SHARD_COUNTS}
    speedup = (
        results[4][0].throughput_qps / results[1][0].throughput_qps
    )
    rows = []
    for n in SHARD_COUNTS:
        report, fanout = results[n]
        rows.append(
            [
                str(n),
                f"{report.throughput_qps:,.0f}",
                f"{1e3 * report.latency['p50']:.3f}",
                f"{1e3 * report.latency['p99']:.3f}",
                f"{report.payload_hit_rate:.1%}",
                f"{_mean_fanout(fanout):.2f}",
            ]
        )
    rows.append(["4 vs 1", f"{speedup:.1f}x", "", "", "", ""])
    emit(
        "cluster_scaling",
        render_table(
            ["Shards", "qps", "p50 ms", "p99 ms", "payload hits", "mean fan-out"],
            rows,
            title=(
                "Cluster scaling: fixed per-shard envelope "
                f"({PER_SHARD_CACHE_BYTES >> 10} KiB/tier, "
                f"{WORKERS_PER_SHARD} workers), Zipfian skew=1.1"
            ),
        ),
    )
    assert all(report.errors == 0 for report, _ in results.values())
    if os.environ.get("REPRO_BENCH_RELAX"):
        # shared-runner smoke mode (CI): report, don't gate on wall clock
        assert speedup > 1.0, f"sharding made serving slower ({speedup:.2f}x)"
    else:
        assert speedup >= 2.0, f"4-shard speedup only {speedup:.2f}x"


def test_cross_shard_matches_single_pool_bit_exact(cluster_pool):
    """A served cross-shard composite == single-pool consolidate, bit-for-bit."""
    pool, data = cluster_pool
    with ClusterGateway(pool, _config(4)) as cluster:
        names = sorted(pool.expert_names())
        # pick tasks whose primaries live on different shards
        first = names[0]
        partner = next(
            n for n in names[1:] if cluster.shards_of(n)[0] != cluster.shards_of(first)[0]
        )
        query = (first, partner)
        response = cluster.serve(query)
        assert cluster.metrics.counter("cross_shard") >= 1
        rebuilt = deserialize_task_model(response.payload)
    network, _ = pool.consolidate(list(query))
    x = data.test.images[:32]
    assert np.array_equal(rebuilt.logits(x), batched_forward(network, x))


def test_cluster_serve_kernel(benchmark, cluster_pool, workload):
    """Timed kernel: one warm cached serve through the cluster front end."""
    pool, _ = cluster_pool
    with ClusterGateway(pool, _config(4)) as cluster:
        tasks, transport = workload.sample(1, seed=41)[0]
        cluster.serve(tasks, transport)
        benchmark(lambda: cluster.serve(tasks, transport))
