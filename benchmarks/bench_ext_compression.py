"""Extension bench: stacking quantization/pruning on PoE (paper §2 claim).

The paper positions KD as orthogonal to quantization and pruning.  This
bench extends Table 4: experts shipped as affine-uint8 shrink the pool a
further ~4x with negligible prediction churn, and magnitude-pruned experts
shrink the sparse encoding further.  Timed kernel: serializing a model
payload for shipping (the server's per-query byte cost).
"""

import numpy as np
import pytest

from repro.compress import (
    dequantize_state,
    magnitude_prune,
    quantize_state,
    quantized_nbytes,
    sparse_nbytes,
)
from repro.core import ModelQueryRequest, PoEServer, deserialize_task_model
from repro.eval import render_table
from repro.nn import state_dict_nbytes


@pytest.mark.parametrize("track_idx", [0], ids=["synth-cifar"])
def test_compression_stacks_with_poe(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    pool = store.pool(track)
    data = store.dataset(track)
    tasks = list(track.selected_tasks(data.hierarchy)[:2])
    server = PoEServer(pool)

    full = server.handle(ModelQueryRequest(tasks=tuple(tasks)))
    packed = server.handle(ModelQueryRequest(tasks=tuple(tasks), transport="uint8"))
    model_full = deserialize_task_model(full.payload)
    model_packed = deserialize_task_model(packed.payload)
    x = data.test.images[:200]
    agreement = float((model_full.predict(x) == model_packed.predict(x)).mean())

    # raw state-dict accounting per expert
    name = tasks[0]
    expert_state = pool.experts[name].state_dict()
    raw = state_dict_nbytes(expert_state)
    quant = quantized_nbytes(quantize_state(expert_state))

    rows = [
        ["float32 payload", f"{full.payload_bytes / 1024:.1f}KB", "1.00"],
        [
            "uint8 payload",
            f"{packed.payload_bytes / 1024:.1f}KB",
            f"{agreement:.3f}",
        ],
        ["expert state raw", f"{raw / 1024:.1f}KB", "-"],
        ["expert state uint8", f"{quant / 1024:.1f}KB", "-"],
    ]
    emit(
        f"ext_compression_{track.name}",
        render_table(
            ["Representation", "Bytes", "Prediction agreement"],
            rows,
            title=f"Extension ({track.name}): quantization stacked on PoE",
        ),
    )
    assert packed.payload_bytes < full.payload_bytes
    assert quant < raw / 3.5
    assert agreement > 0.9

    benchmark(lambda: server.handle(ModelQueryRequest(tasks=tuple(tasks), transport="uint8")))


@pytest.mark.parametrize("track_idx", [0], ids=["synth-cifar"])
def test_pruning_shrinks_expert_storage(benchmark, tracks, store, emit, track_idx):
    """Magnitude pruning at 50% halves the sparse encoding of an expert
    while keeping its standalone accuracy close (orthogonality claim)."""
    from repro.eval.metrics import specialized_accuracy
    from repro.models import WRNHead

    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    pool = store.pool(track)
    data = store.dataset(track)
    name = track.selected_tasks(data.hierarchy)[0]
    task = data.hierarchy.task(name)

    # work on a copy so the shared pool stays pristine
    clone = WRNHead(
        track.depth, track.library_k, track.expert_ks, len(task),
        library_level=track.library_level,
    )
    clone.load_state_dict(pool.experts[name].state_dict())
    from repro.models import BranchedSpecialistNet

    base_model = BranchedSpecialistNet(pool.library, [(name, clone)])
    base_model.eval()
    acc_before = specialized_accuracy(base_model, data.test, task)
    dense = sparse_nbytes(clone.state_dict())
    magnitude_prune(clone, 0.5)
    acc_after = specialized_accuracy(base_model, data.test, task)
    sparse = sparse_nbytes(clone.state_dict())

    emit(
        f"ext_pruning_{track.name}",
        render_table(
            ["Variant", "Sparse bytes", "Accuracy"],
            [
                ["dense expert", f"{dense / 1024:.1f}KB", f"{acc_before:.3f}"],
                ["50% pruned", f"{sparse / 1024:.1f}KB", f"{acc_after:.3f}"],
            ],
            title=f"Extension ({track.name}): magnitude pruning on one expert",
        ),
    )
    assert sparse < dense
    assert acc_after > acc_before - 0.15

    state = pool.experts[name].state_dict()
    benchmark(lambda: sparse_nbytes(state))
