"""Extension bench: the library depth ℓ (size/accuracy tradeoff, §4.1).

The paper introduces ℓ — how many convolution groups the shared library
keeps — as "a hyperparameter that controls the tradeoff between the size
of a task-specific model and its accuracy" but evaluates only ℓ=3
(conv1-conv3).  This ablation builds a second pool at ℓ=2 (conv1-conv2
shared; experts own conv3+conv4) on the fast track and quantifies the
tradeoff: bigger per-expert components (more params per branch), more
capacity per expert.

Runs on the fast track so the extra pool costs seconds, not minutes.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.eval import ArtifactStore, cifar_track, render_table
from repro.eval.metrics import specialized_accuracy
from repro.models import count_params


@pytest.fixture(scope="module")
def fast_store(store):
    return ArtifactStore(store.root)


def build_level_pool(track, store_, level):
    track_l = replace(track, library_level=level, name=f"{track.name}-ll{level}")
    pool = store_.pool(track_l)
    return track_l, pool


def test_library_level_tradeoff(benchmark, emit, fast_store):
    base = cifar_track(fast=True)
    rows = []
    accs = {}
    params = {}
    for level in (3, 2):
        track_l, pool = build_level_pool(base, fast_store, level)
        data = fast_store.dataset(track_l)
        task_accs = []
        for name in track_l.selected_tasks(data.hierarchy):
            model, composite = pool.consolidate([name])
            task_accs.append(specialized_accuracy(model, data.test, composite))
        model, _ = pool.consolidate(list(track_l.selected_tasks(data.hierarchy)[:3]))
        accs[level] = float(np.mean(task_accs))
        params[level] = count_params(model)
        rows.append(
            [
                f"l={level} ({'conv1-3' if level == 3 else 'conv1-2'} shared)",
                f"{100 * accs[level]:.2f}",
                f"{count_params(pool.library):,}",
                f"{params[level]:,}",
            ]
        )
    emit(
        "ext_library_level",
        render_table(
            ["Library level", "Expert acc (mean)", "Library params", "M(Q) params (n=3)"],
            rows,
            title="Extension: library depth l — size/accuracy tradeoff (fast track)",
        ),
    )
    # The tradeoff direction: shallower library => bigger task-specific
    # models (each expert owns one more conv group).
    assert params[2] > params[3]
    # Both settings must produce working experts.
    assert min(accs.values()) > 0.5

    track_l3, pool3 = build_level_pool(base, fast_store, 3)
    tasks = list(track_l3.selected_tasks(fast_store.dataset(track_l3).hierarchy)[:3])
    benchmark(lambda: pool3.consolidate(tasks))
