"""Figure 7: time to build M(Q) as n(Q) grows, per method.

Shape to reproduce: training-based methods' time-to-best-accuracy grows
with n(Q) (more data, bigger students); PoE stays flat at ~0 regardless of
n(Q).  Timed kernel: serving a query end-to-end through ModelQueryEngine.
"""

import numpy as np
import pytest

from repro.core import ModelQueryEngine
from repro.eval import consolidation_times, render_table


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_fig7(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    rows = consolidation_times(track, store)
    by_method = {}
    for row in rows:
        by_method.setdefault(row["method"], {})[row["n_q"]] = row["time_to_best_mean"]
    cells = [
        [method] + [f"{by_method[method][n]:.2f}s" for n in (2, 3, 4, 5)]
        for method in by_method
    ]
    emit(
        f"fig7_{track.name}",
        render_table(
            ["Method", "n(Q)=2", "n(Q)=3", "n(Q)=4", "n(Q)=5"],
            cells,
            title=f"Figure 7 ({track.name}): wall-clock to best accuracy per query",
        ),
    )

    # Shape: PoE is orders of magnitude faster than every training method
    # at every n(Q), and stays flat as n(Q) grows.
    for n in (2, 3, 4, 5):
        poe = by_method["poe"][n]
        for method, series in by_method.items():
            if method == "poe":
                continue
            assert poe < series[n] / 10, (method, n)
    assert by_method["poe"][5] < 0.05

    # Timed kernel: a full query through the service API.
    pool = store.pool(track)
    data = store.dataset(track)
    tasks = list(track.selected_tasks(data.hierarchy)[:5])
    engine = ModelQueryEngine(pool, cache_models=False)
    benchmark(lambda: engine.query(tasks))
