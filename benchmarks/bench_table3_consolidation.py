"""Table 3: model consolidation for composite tasks, n(Q) ∈ {2..5}.

Regenerates the full method × n(Q) accuracy/size matrix.  Expected shape
(paper §5.3): PoE beats every training-based baseline except CKD despite
zero training; SD/UHC+Scratch collapse (overconfidence + logit scales);
SD/UHC+CKD recover much of the gap; the branched PoE model carries the
fewest parameters.  The timed kernel is PoE's train-free consolidation.
"""

import numpy as np
import pytest

from repro.eval import format_count, render_table, service_table
from repro.eval.service import SERVICE_METHODS


def render_track_table(track, store):
    rows = service_table(track, store)
    by_method = {}
    for row in rows:
        by_method.setdefault(row["method"], {})[row["n_q"]] = row
    out = []
    for method in SERVICE_METHODS:
        per_n = by_method.get(method, {})
        cells = [method]
        for n_q in (2, 3, 4, 5):
            r = per_n.get(n_q)
            cells.append(
                f"{100 * r['accuracy_mean']:.1f}±{100 * r['accuracy_std']:.1f}" if r else "-"
            )
        any_row = next(iter(per_n.values()))
        cells.append(any_row["arch"])
        cells.append(format_count(np.mean([r["params"] for r in per_n.values()])))
        out.append(cells)
    return out, rows


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_table3(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    cells, rows = render_track_table(track, store)
    emit(
        f"table3_{track.name}",
        render_table(
            ["Method", "n(Q)=2", "n(Q)=3", "n(Q)=4", "n(Q)=5", "Arch", "Params(avg)"],
            cells,
            title=f"Table 3 ({track.name}): task-specific models for composite tasks",
        ),
    )

    acc = {
        (r["method"], r["n_q"]): r["accuracy_mean"] for r in rows
    }
    for n_q in (2, 3, 4, 5):
        # PoE beats the scratch-teacher merging baselines by a wide margin.
        assert acc[("poe", n_q)] > acc[("sd+scratch", n_q)]
        assert acc[("poe", n_q)] > acc[("uhc+scratch", n_q)]
        # Merging calibrated CKD experts beats merging scratch experts.
        assert acc[("sd+ckd", n_q)] > acc[("sd+scratch", n_q)]
        assert acc[("uhc+ckd", n_q)] > acc[("uhc+scratch", n_q)]
    # CKD (training) stays the best specialist method overall.
    mean_ckd = np.mean([acc[("ckd", n)] for n in (2, 3, 4, 5)])
    mean_poe = np.mean([acc[("poe", n)] for n in (2, 3, 4, 5)])
    assert mean_ckd >= mean_poe - 0.02

    # Timed kernel: the train-free consolidation itself at n(Q)=5.
    pool = store.pool(track)
    data = store.dataset(track)
    tasks = track.selected_tasks(data.hierarchy)[:5]
    benchmark(lambda: pool.consolidate(list(tasks)))


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_table3_poe_param_advantage(benchmark, tracks, store, track_idx):
    """PoE's branched M(Q) carries fewer params than the trained students."""
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    rows = service_table(track, store, methods=("poe", "scratch"), n_q_values=(5,))
    poe = next(r for r in rows if r["method"] == "poe")
    scratch = next(r for r in rows if r["method"] == "scratch")
    assert poe["params"] < scratch["params"]

    pool = store.pool(track)
    data = store.dataset(track)
    tasks = track.selected_tasks(data.hierarchy)[:2]
    benchmark(lambda: pool.consolidate(list(tasks)))
