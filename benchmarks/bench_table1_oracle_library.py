"""Table 1: oracles vs library students — accuracy, FLOPs, params.

Regenerates the paper's Table 1 rows for both tracks and benchmarks the
inference cost gap between oracle and library (the wall-clock counterpart
of the FLOPs column).
"""

import numpy as np
import pytest

from repro.distill import batched_forward
from repro.eval import accuracy, format_count, render_table
from repro.models import count_flops, count_params


def table1_rows(track, store):
    data = store.dataset(track)
    oracle_model, meta = store.oracle(track)
    pool = store.pool(track)
    rows = [
        [
            "Oracle (teacher)",
            meta["arch"],
            f"{100 * meta['test_accuracy']:.2f}",
            format_count(meta["flops"]),
            format_count(meta["params"]),
        ]
    ]
    student = pool.library_student
    if student is not None:
        shape = (3, track.image_size, track.image_size)
        rows.append(
            [
                "Library model (student)",
                student.arch_name(),
                f"{100 * accuracy(student, data.test):.2f}",
                format_count(count_flops(student, shape)),
                format_count(count_params(student)),
            ]
        )
    else:
        # Pool was loaded from disk (student head not persisted): report
        # the library row from the build-time summary record.
        import json
        import os

        summary_path = os.path.join(
            store.root, "results", track.cache_key(), "summary.json"
        )
        if os.path.exists(summary_path):
            with open(summary_path) as fh:
                lib = json.load(fh).get("table1", {}).get("library")
            if lib:
                rows.append(
                    [
                        "Library model (student)",
                        lib["arch"],
                        f"{100 * lib['test_accuracy']:.2f}",
                        format_count(lib["flops"]),
                        format_count(lib["params"]),
                    ]
                )
    return rows


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_table1(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    rows = table1_rows(track, store)
    emit(
        f"table1_{track.name}",
        render_table(
            ["Model", "Arch", "Acc.", "FLOPs", "Params"],
            rows,
            title=f"Table 1 ({track.name}): generic oracle vs library student",
        ),
    )
    # Timed kernel: oracle inference over one test batch (the cost the
    # library/specialists avoid).
    data = store.dataset(track)
    oracle_model, _ = store.oracle(track)
    batch = data.test.images[:128]
    benchmark(lambda: batched_forward(oracle_model, batch, batch_size=128))


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_table1_library_inference(benchmark, tracks, store, track_idx):
    """Companion timing: the library component is far cheaper than the oracle."""
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    data = store.dataset(track)
    pool = store.pool(track)
    # Time the persisted library trunk when the full student head isn't in
    # memory (pools loaded from disk keep only the trunk, which is what all
    # task-specific models actually run).
    model = pool.library_student or pool.library
    batch = data.test.images[:128]
    benchmark(lambda: batched_forward(model, batch, batch_size=128))
