"""Table 4: storage volume of the PoE framework.

Shape to reproduce: pool (library + all experts) ≪ oracle (paper: 20-30×
smaller), and the estimate for materialising all 2^n composite specialists
explodes past everything else.  Timed kernel: persisting the pool.
"""

import os

import pytest

from repro.core import ExpertStore, estimate_all_specialists_volume
from repro.eval import render_table


def volume_rows(track, store):
    pool = store.pool(track)
    oracle_model, _ = store.oracle(track)
    expert_store = ExpertStore(
        os.path.join(store.root, "models", track.cache_key(), "pool")
    )
    report = expert_store.volume_report(pool, oracle_model)
    fmt = lambda b: f"{b / 1024:.1f}KB" if b < 1 << 20 else f"{b / (1 << 20):.2f}MB"
    big = report.all_specialists_bytes
    big_fmt = f"{big / (1 << 40):.2f}TB" if big > 1 << 40 else f"{big / (1 << 30):.2f}GB" if big > 1 << 30 else fmt(big)
    rows = [
        [
            track.name,
            fmt(report.oracle_bytes),
            fmt(report.library_bytes),
            fmt(int(report.mean_expert_bytes)),
            fmt(report.pool_bytes),
            f">= {big_fmt}",
            f"{report.oracle_to_pool_ratio:.1f}x",
        ]
    ]
    return rows, report


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_table4(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    rows, report = volume_rows(track, store)
    emit(
        f"table4_{track.name}",
        render_table(
            ["Dataset", "Oracle", "Library", "Expert(avg)", "PoE all", "All specialized (est.)", "Oracle/PoE"],
            rows,
            title=f"Table 4 ({track.name}): volumes of the entire PoE framework",
        ),
    )
    # Shape assertions.
    assert report.pool_bytes < report.oracle_bytes
    assert report.library_bytes < report.oracle_bytes / 5
    per_specialist = int(report.mean_expert_bytes) + report.library_bytes
    assert estimate_all_specialists_volume(20, per_specialist) > 50 * report.oracle_bytes

    # Timed kernel: serializing the whole pool to disk.
    pool = store.pool(track)
    target = os.path.join(store.root, "bench-tmp", f"pool-{track.name}")
    benchmark(lambda: ExpertStore(target).save(pool))
