"""Self-tuning controller vs static hand-tuned budgets (shifting workload).

The control-plane claim to defend (ROADMAP item 2): under a Zipfian
workload whose hot set is slightly larger than the payload cache, is
polluted by one-off cold queries, and **rotates mid-run**, a gateway with
the :class:`repro.control.CacheController` attached must strictly beat
the same gateway with the same byte budgets and plain LRU:

* higher payload hit rate — GDSF eviction/admission keeps hot,
  expensive-to-rebuild composites resident while cold one-offs are denied
  admission, and the prefetch loop re-serializes the new hot set after
  the rotation before clients pay the miss;
* higher throughput (un-relaxed) — every avoided miss is an avoided
  consolidate+serialize.

The controller's popularity clock is a deterministic step clock (one
fixed sim-``dt`` per request), so its decisions are machine-speed
independent; wall time only enters through the reported qps.

Self-contained: builds a micro pool inline (~seconds).  Run with::

    pytest benchmarks/bench_self_tuning.py -q -s

``REPRO_BENCH_RELAX=1`` (CI smoke) keeps the hit-rate and
controller-acted gates but relaxes the qps win to a no-collapse floor.
"""

import os

import pytest

from repro.control import run_self_tuning_benchmark, verify_report
from repro.serving import append_benchmark_record, build_demo_pool, run_metadata

RELAXED = bool(os.environ.get("REPRO_BENCH_RELAX"))
OUT = os.environ.get("REPRO_BENCH_OUT", "BENCH_self_tuning.json")


@pytest.fixture(scope="module")
def tuning_pool():
    pool, _data = build_demo_pool(num_tasks=8, train_per_class=20, epochs=4, seed=13)
    return pool


def test_controller_beats_static_budgets(tuning_pool, emit):
    report = run_self_tuning_benchmark(tuning_pool, seed=0)
    emit("bench_self_tuning", report.render())

    append_benchmark_record(
        OUT,
        {"bench": "self_tuning", **report.to_dict(), "meta": run_metadata()},
        label="relaxed" if RELAXED else "local",
    )

    # the controller must have actually exercised every actuator the
    # tentpole added: biased eviction/admission and prefetch
    assert report.tuned.score_evictions + report.tuned.rejections > 0
    assert report.tuned.prefetch_builds > 0
    assert report.tuned.prefetch_hits > 0

    verify_report(report, relaxed=RELAXED)
