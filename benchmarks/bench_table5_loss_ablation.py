"""Table 5: ablation of the CKD loss — L_soft only / L_scale only / both.

Shape to reproduce (paper §5.3): L_soft+L_scale > L_soft only > L_scale
only, at every n(Q).  An extra design ablation compares the paper's L1
scale loss against an L2 variant (DESIGN.md §5).  Timed kernel: a single
CKD loss evaluation (the inner loop of expert extraction).
"""

import numpy as np
import pytest

from repro.distill import ckd_loss
from repro.eval import ablation_table, render_table
from repro.tensor import Tensor


@pytest.mark.parametrize("track_idx", [0, 1], ids=["synth-cifar", "synth-tiny"])
def test_table5(benchmark, tracks, store, emit, track_idx):
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    rows = ablation_table(track, store)
    by_method = {}
    for row in rows:
        by_method.setdefault(row["method"], {})[row["n_q"]] = row
    label = {"poe-soft": "L_soft only", "poe-scale": "L_scale only", "poe": "L_soft + L_scale"}
    cells = []
    for method in ("poe-soft", "poe-scale", "poe"):
        per_n = by_method[method]
        cells.append(
            [label[method]]
            + [
                f"{100 * per_n[n]['accuracy_mean']:.1f}±{100 * per_n[n]['accuracy_std']:.1f}"
                for n in (2, 3, 4, 5)
            ]
        )
    emit(
        f"table5_{track.name}",
        render_table(
            ["Variant", "n(Q)=2", "n(Q)=3", "n(Q)=4", "n(Q)=5"],
            cells,
            title=f"Table 5 ({track.name}): L_soft vs L_scale ablation",
        ),
    )

    acc = {(r["method"], r["n_q"]): r["accuracy_mean"] for r in rows}
    both = np.mean([acc[("poe", n)] for n in (2, 3, 4, 5)])
    soft = np.mean([acc[("poe-soft", n)] for n in (2, 3, 4, 5)])
    scale = np.mean([acc[("poe-scale", n)] for n in (2, 3, 4, 5)])
    # The robust paper shape: the combined loss beats either term alone.
    # (The paper also finds soft-only > scale-only; on this substrate the
    # near-saturated oracle makes raw-logit regression unusually strong, so
    # that secondary ordering can flip — recorded in EXPERIMENTS.md.)
    assert both >= soft - 0.01  # L_scale helps on top of L_soft
    assert both >= scale - 0.01  # L_soft helps on top of L_scale

    # Timed kernel: one CKD loss evaluation on a realistic batch.
    rng = np.random.default_rng(0)
    teacher = Tensor(rng.standard_normal((256, 30)).astype(np.float32))
    student = Tensor(rng.standard_normal((256, 3)).astype(np.float32), requires_grad=True)
    classes = [0, 1, 2]
    benchmark(
        lambda: ckd_loss(teacher, student, classes, temperature=4.0, alpha=0.3).item()
    )


@pytest.mark.parametrize("track_idx", [0], ids=["synth-cifar"])
def test_l1_vs_l2_scale_norm(benchmark, tracks, store, emit, track_idx):
    """Design ablation: the paper argues L1 over L2 for L_scale."""
    if track_idx >= len(tracks):
        pytest.skip("track not selected via REPRO_BENCH_TRACKS")
    track = tracks[track_idx]
    rows = ablation_table(track, store, n_q_values=(3, 5), variants=("poe-l2", "poe"))
    acc = {(r["method"], r["n_q"]): r["accuracy_mean"] for r in rows}
    cells = [
        ["L_scale = L2", f"{100 * acc[('poe-l2', 3)]:.1f}", f"{100 * acc[('poe-l2', 5)]:.1f}"],
        ["L_scale = L1 (paper)", f"{100 * acc[('poe', 3)]:.1f}", f"{100 * acc[('poe', 5)]:.1f}"],
    ]
    emit(
        f"table5b_l1_vs_l2_{track.name}",
        render_table(
            ["Variant", "n(Q)=3", "n(Q)=5"],
            cells,
            title=f"Design ablation ({track.name}): L1 vs L2 scale regularizer",
        ),
    )
    rng = np.random.default_rng(0)
    teacher = Tensor(rng.standard_normal((256, 30)).astype(np.float32))
    student = Tensor(rng.standard_normal((256, 3)).astype(np.float32), requires_grad=True)
    benchmark(
        lambda: ckd_loss(
            teacher, student, [0, 1, 2], temperature=4.0, alpha=0.3, scale_norm="l2"
        ).item()
    )
